"""Binary PPM (P6) image I/O — dependency-free output for the examples."""

from __future__ import annotations

from pathlib import Path

import numpy as np

from .tonemap import to_uint8

__all__ = ["ppm_bytes", "write_ppm", "read_ppm", "save_radiance_ppm"]


def ppm_bytes(pixels: np.ndarray) -> bytes:
    """An (H, W, 3) uint8 array as binary PPM (P6) bytes.

    Raises:
        ValueError: on wrong shape or dtype.
    """
    arr = np.asarray(pixels)
    if arr.ndim != 3 or arr.shape[2] != 3:
        raise ValueError(f"expected (H, W, 3), got {arr.shape}")
    if arr.dtype != np.uint8:
        raise ValueError(f"expected uint8 pixels, got {arr.dtype}")
    h, w = arr.shape[:2]
    return f"P6\n{w} {h}\n255\n".encode("ascii") + arr.tobytes()


def write_ppm(pixels: np.ndarray, path: str | Path) -> None:
    """Write an (H, W, 3) uint8 array as binary PPM.

    Raises:
        ValueError: on wrong shape or dtype.
    """
    with open(path, "wb") as fh:
        fh.write(ppm_bytes(pixels))


def read_ppm(path: str | Path) -> np.ndarray:
    """Read a binary PPM written by :func:`write_ppm`.

    Raises:
        ValueError: on malformed headers.
    """
    data = Path(path).read_bytes()
    if not data.startswith(b"P6"):
        raise ValueError("not a binary PPM (P6) file")
    # Header: magic, width, height, maxval — whitespace separated, with
    # possible comment lines.
    fields: list[bytes] = []
    i = 2
    while len(fields) < 3:
        while i < len(data) and data[i : i + 1].isspace():
            i += 1
        if data[i : i + 1] == b"#":
            while i < len(data) and data[i : i + 1] != b"\n":
                i += 1
            continue
        start = i
        while i < len(data) and not data[i : i + 1].isspace():
            i += 1
        fields.append(data[start:i])
    i += 1  # single whitespace after maxval
    w, h, maxval = (int(f) for f in fields)
    if maxval != 255:
        raise ValueError(f"only maxval 255 supported, got {maxval}")
    body = data[i : i + w * h * 3]
    if len(body) != w * h * 3:
        raise ValueError("truncated PPM body")
    return np.frombuffer(body, dtype=np.uint8).reshape(h, w, 3).copy()


def save_radiance_ppm(radiance: np.ndarray, path: str | Path, key: float = 0.4) -> None:
    """Tone-map a radiance array and write it as PPM in one step."""
    write_ppm(to_uint8(radiance, key=key), path)
