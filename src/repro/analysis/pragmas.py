"""Inline suppression: ``# repro: allow[rule-id]`` and file markers.

A pragma on the finding's own line — or on a comment-only line directly
above it — suppresses that rule there.  Several ids may share one
bracket (``allow[det-random, det-wallclock]``); prose after the bracket
is encouraged (the *why* belongs next to the escape hatch).

``# repro: canonical-module`` anywhere in a file opts it into the
determinism-scope rules regardless of its path (new canonical modules,
and the fixture corpus, use this instead of config surgery).
"""

from __future__ import annotations

import re

from .findings import Finding

__all__ = ["allow_pragmas", "is_canonical_marked", "suppressed_by_pragma"]

_ALLOW_RE = re.compile(r"#\s*repro:\s*allow\[([^\]]+)\]")
_CANONICAL_RE = re.compile(r"#\s*repro:\s*canonical-module\b")


def allow_pragmas(source: str) -> dict[int, set[str]]:
    """1-based line -> set of allowed rule ids, from every pragma."""
    out: dict[int, set[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        m = _ALLOW_RE.search(line)
        if m:
            ids = {part.strip() for part in m.group(1).split(",") if part.strip()}
            out.setdefault(lineno, set()).update(ids)
    return out


def is_canonical_marked(source: str) -> bool:
    """Whether the file opts into canonical scope via its marker comment."""
    return _CANONICAL_RE.search(source) is not None


def suppressed_by_pragma(
    finding: Finding, pragmas: dict[int, set[str]], source_lines: list[str]
) -> bool:
    """True when a pragma covers the finding's line.

    A pragma counts on the finding's own line, or anywhere in the
    contiguous block of comment-only lines directly above it — the
    justification prose is encouraged to span several lines, with the
    ``allow[...]`` bracket on whichever line reads best.  A pragma
    trailing an unrelated *statement* above never bleeds downward.
    """
    allowed = pragmas.get(finding.line)
    if allowed and finding.rule in allowed:
        return True
    lineno = finding.line - 1
    while lineno >= 1:
        idx = lineno - 1
        if idx >= len(source_lines) or not source_lines[idx].lstrip().startswith("#"):
            return False
        above = pragmas.get(lineno)
        if above and finding.rule in above:
            return True
        lineno -= 1
    return False
