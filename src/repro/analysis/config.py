"""Lint configuration: ``[tool.repro.lint]`` in pyproject.toml.

The config root is discovered by walking up from the first scanned
path, so ``repro lint /abs/path/to/repo/src`` works from any working
directory.  Everything has a sensible default; the table may override:

    [tool.repro.lint]
    include   = ["src", "tests", "benchmarks"]   # default scan roots
    exclude   = ["tests/analysis/fixtures"]      # skipped during walks
    canonical = ["src/repro/core", ...]          # determinism scope
    disable   = ["det-id-order"]                 # rule toggles
    baseline  = "lint-baseline.json"             # grandfathered findings

Patterns match the posix path relative to the root: an exact path, a
directory prefix, or an ``fnmatch`` glob all work.  A pattern with no
``/`` also matches a bare file or directory name anywhere in the tree
(so ``--exclude fixtures`` works without spelling the full path).
"""

from __future__ import annotations

import fnmatch
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Sequence

try:
    import tomllib
except ImportError:  # pragma: no cover — 3.10 fallback, defaults only
    tomllib = None

__all__ = ["LintConfig", "load_config", "find_root", "DEFAULT_CANONICAL"]

#: The modules the determinism contract covers (ARCHITECTURE.md): the
#: physics core, geometry, the RNG itself, every parallel transport,
#: and the procedural generator.  Paths are root-relative.
DEFAULT_CANONICAL = (
    "src/repro/core",
    "src/repro/geometry",
    "src/repro/rng",
    "src/repro/parallel",
    "src/repro/scenes/generator.py",
)

DEFAULT_EXCLUDE = (
    "__pycache__",
    ".git",
    "build",
    "dist",
)


def _matches(relpath: str, pattern: str) -> bool:
    pattern = pattern.rstrip("/")
    return (
        relpath == pattern
        or relpath.startswith(pattern + "/")
        or fnmatch.fnmatch(relpath, pattern)
    )


@dataclass
class LintConfig:
    root: Path
    include: tuple[str, ...] = ("src", "tests", "benchmarks")
    exclude: tuple[str, ...] = ()
    canonical: tuple[str, ...] = DEFAULT_CANONICAL
    disable: tuple[str, ...] = ()
    baseline: Optional[str] = "lint-baseline.json"

    def relpath(self, path: Path) -> str:
        """Posix path relative to the root (or absolute when outside)."""
        try:
            return path.resolve().relative_to(self.root.resolve()).as_posix()
        except ValueError:
            return path.resolve().as_posix()

    def is_excluded(self, path: Path) -> bool:
        """Whether any component or prefix of *path* matches an exclude."""
        rel = self.relpath(path)
        parts = rel.split("/")
        if any(part in DEFAULT_EXCLUDE for part in parts):
            return True
        for pat in self.exclude:
            if _matches(rel, pat):
                return True
            if "/" not in pat and any(
                fnmatch.fnmatch(part, pat) for part in parts
            ):
                return True
        return False

    def is_canonical(self, path: Path) -> bool:
        """Whether *path* falls under the determinism contract's scope."""
        rel = self.relpath(path)
        return any(_matches(rel, pat) for pat in self.canonical)

    def baseline_path(self) -> Optional[Path]:
        """Absolute path of the configured baseline file, or None."""
        if not self.baseline:
            return None
        return self.root / self.baseline


def find_root(start: Path) -> Optional[Path]:
    """Nearest ancestor of *start* holding a pyproject.toml."""
    probe = start.resolve()
    if probe.is_file():
        probe = probe.parent
    for candidate in (probe, *probe.parents):
        if (candidate / "pyproject.toml").is_file():
            return candidate
    return None


def load_config(paths: Sequence[Path], root: Optional[Path] = None) -> LintConfig:
    """The effective config for a lint run over *paths*."""
    if root is None:
        for path in paths:
            root = find_root(path)
            if root is not None:
                break
    if root is None:
        root = Path.cwd()
    table: dict = {}
    pyproject = root / "pyproject.toml"
    if tomllib is not None and pyproject.is_file():
        with pyproject.open("rb") as fh:
            table = (
                tomllib.load(fh).get("tool", {}).get("repro", {}).get("lint", {})
            )
    config = LintConfig(root=root)
    if "include" in table:
        config.include = tuple(table["include"])
    if "exclude" in table:
        config.exclude = tuple(table["exclude"])
    if "canonical" in table:
        config.canonical = tuple(table["canonical"])
    if "disable" in table:
        config.disable = tuple(table["disable"])
    if "baseline" in table:
        config.baseline = table["baseline"] or None
    return config
