"""The committed baseline: grandfathered findings that do not fail CI.

The file is JSON — ``{"findings": [{"path", "rule", "message"}, ...]}``
— fingerprinted without line numbers so edits elsewhere in a file do
not resurface a grandfathered finding.  The repo's checked-in baseline
is **empty** (every finding the suite surfaced was fixed or pragma-
annotated in place); the machinery exists so future rules can land
strict-by-default without blocking on a repo-wide cleanup.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Iterable

from .findings import Finding

__all__ = ["load_baseline", "write_baseline", "split_baselined"]


def load_baseline(path: Path) -> Counter:
    """Fingerprint multiset from a baseline file (missing file: empty)."""
    if not path.is_file():
        return Counter()
    doc = json.loads(path.read_text(encoding="utf-8"))
    return Counter(
        (entry["path"], entry["rule"], entry["message"])
        for entry in doc.get("findings", ())
    )


def write_baseline(path: Path, findings: Iterable[Finding]) -> None:
    """Serialise *findings* (line-free fingerprints) to *path* as JSON."""
    doc = {
        "findings": [
            {"path": f.path, "rule": f.rule, "message": f.message}
            for f in sorted(findings, key=lambda f: (f.path, f.line, f.rule))
        ]
    }
    path.write_text(json.dumps(doc, indent=2) + "\n", encoding="utf-8")


def split_baselined(
    findings: list[Finding], baseline: Counter
) -> tuple[list[Finding], list[Finding], int]:
    """(live, grandfathered, stale-entry-count) under *baseline*.

    Each baseline entry absorbs at most as many findings as it was
    recorded with — a multiset match, so duplicating a grandfathered
    violation still fails.  ``stale`` counts entries that matched
    nothing (fixed since recording; a hint to regenerate).
    """
    remaining = Counter(baseline)
    live: list[Finding] = []
    grandfathered: list[Finding] = []
    for finding in findings:
        fp = finding.fingerprint()
        if remaining.get(fp, 0) > 0:
            remaining[fp] -= 1
            grandfathered.append(finding)
        else:
            live.append(finding)
    stale = sum(count for count in remaining.values() if count > 0)
    return live, grandfathered, stale
