"""Checker base class and the per-file lint context.

A checker is an ``ast.NodeVisitor`` over one parsed file.  It declares
the :class:`~repro.analysis.findings.Rule` records it can emit and
reports violations through :meth:`Checker.emit`; the engine handles
scope gating (canonical-only rules), pragma suppression, the baseline,
and output formatting, so rule modules stay pure AST logic.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Optional

from .findings import Finding, Rule

__all__ = ["Checker", "LintContext", "resolve_imports", "dotted_name"]


def resolve_imports(tree: ast.AST) -> dict[str, str]:
    """Local name -> qualified dotted name, from every import statement.

    ``import numpy as np`` maps ``np -> numpy``; ``from time import
    time`` maps ``time -> time.time``.  Function-local imports are
    collected too (best effort — one namespace per file is plenty for
    lint-grade resolution).  Relative imports keep their leading dots,
    which never match a forbidden stdlib name, as intended.
    """
    imports: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.partition(".")[0]
                imports[local] = alias.name if alias.asname else local
        elif isinstance(node, ast.ImportFrom):
            module = "." * node.level + (node.module or "")
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                imports[local] = f"{module}.{alias.name}" if module else alias.name
    return imports


def dotted_name(node: ast.AST, imports: Optional[dict[str, str]] = None) -> Optional[str]:
    """The dotted name of a Name/Attribute chain, import-resolved.

    ``np.random.default_rng`` with ``import numpy as np`` resolves to
    ``numpy.random.default_rng``; chains hanging off calls or
    subscripts resolve to ``None`` (only static attribute walks count).
    """
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    base = node.id
    if imports and base in imports:
        base = imports[base]
    parts.append(base)
    return ".".join(reversed(parts))


@dataclass
class LintContext:
    """Everything checkers may consult about the file being linted."""

    path: str  # display path (relative to the lint root when possible)
    source: str
    tree: ast.Module
    canonical: bool = False
    imports: dict[str, str] = field(default_factory=dict)

    @classmethod
    def from_source(
        cls, source: str, path: str = "<memory>", canonical: bool = False
    ) -> "LintContext":
        """Parse *source* into a ready context (raises ``SyntaxError``)."""
        tree = ast.parse(source)
        return cls(
            path=path,
            source=source,
            tree=tree,
            canonical=canonical,
            imports=resolve_imports(tree),
        )


class Checker(ast.NodeVisitor):
    """Base class: one rule family walking one file's AST.

    Subclasses set :attr:`rules` and call :meth:`emit` from their
    ``visit_*`` methods.  The engine instantiates a fresh checker per
    file, so instance state never leaks across files.
    """

    rules: tuple[Rule, ...] = ()

    def __init__(self, ctx: LintContext) -> None:
        self.ctx = ctx
        self.findings: list[Finding] = []

    @property
    def scope(self) -> str:
        """The widest scope among this checker's rules."""
        return "canonical" if all(
            r.scope == "canonical" for r in self.rules
        ) else "all"

    def emit(self, node: ast.AST, rule: str, message: str) -> None:
        """Record a finding anchored at *node*'s source position."""
        self.findings.append(
            Finding(
                path=self.ctx.path,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0),
                rule=rule,
                message=message,
            )
        )

    def run(self) -> list[Finding]:
        """Walk the tree once and return everything this checker found."""
        self.visit(self.ctx.tree)
        return self.findings

    def qualname(self, node: ast.AST) -> Optional[str]:
        """The import-resolved dotted name of an expression, else None."""
        return dotted_name(node, self.ctx.imports)
