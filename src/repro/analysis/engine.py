"""The lint driver: file discovery, rule dispatch, suppression, output.

``repro lint`` and ``python -m repro.analysis`` both land here.  Exit
codes are a contract the CLI tests pin:

* **0** — clean (no live findings; grandfathered ones don't count),
* **1** — at least one live finding,
* **2** — usage or parse error (unknown rule id, missing path, a
  scanned file that does not parse).
"""

from __future__ import annotations

import ast
import json
import sys
from pathlib import Path
from typing import Callable, Optional, Sequence, TextIO

from .base import LintContext, resolve_imports
from .baseline import load_baseline, split_baselined, write_baseline
from .config import LintConfig, load_config
from .findings import Finding
from .pragmas import allow_pragmas, is_canonical_marked, suppressed_by_pragma
from .rules import ALL_CHECKERS, all_rule_ids

__all__ = ["LintResult", "lint_source", "lint_paths", "run", "main"]


class UsageError(Exception):
    """A bad invocation or unparseable input (exit code 2)."""


class LintResult:
    """Everything one run produced, pre-formatting."""

    def __init__(self) -> None:
        self.findings: list[Finding] = []          # live (fail the run)
        self.grandfathered: list[Finding] = []     # matched the baseline
        self.suppressed = 0                        # pragma-silenced count
        self.stale_baseline = 0                    # baseline entries unmatched
        self.checked_files = 0

    @property
    def exit_code(self) -> int:
        return 1 if self.findings else 0

    def to_json(self) -> dict:
        """The --format json document for this run."""
        return {
            "findings": [f.to_json() for f in self.findings],
            "grandfathered": [f.to_json() for f in self.grandfathered],
            "suppressed": self.suppressed,
            "stale_baseline": self.stale_baseline,
            "checked_files": self.checked_files,
        }


def lint_source(
    source: str,
    path: str = "<memory>",
    *,
    canonical: Optional[bool] = None,
    rules: Optional[Sequence[str]] = None,
) -> list[Finding]:
    """Lint one source string; pragma suppression applies, no baseline.

    ``canonical=None`` means "whatever the file marker says" — pass
    True/False to force the determinism scope.  The docs harness and
    the fixture tests call this directly.
    """
    if canonical is None:
        canonical = is_canonical_marked(source)
    ctx = LintContext.from_source(source, path=path, canonical=canonical)
    findings: list[Finding] = []
    for checker_cls in ALL_CHECKERS:
        if checker_cls.rules[0].scope == "canonical" and not ctx.canonical:
            continue
        if rules is not None and not any(r.id in rules for r in checker_cls.rules):
            continue
        found = checker_cls(ctx).run()
        if rules is not None:
            found = [f for f in found if f.rule in rules]
        findings.extend(found)
    pragmas = allow_pragmas(source)
    lines = source.splitlines()
    return sorted(
        (f for f in findings if not suppressed_by_pragma(f, pragmas, lines)),
        key=lambda f: (f.line, f.col, f.rule),
    )


def _collect_files(
    paths: Sequence[Path], config: LintConfig
) -> list[Path]:
    """Every .py file to lint.  Explicit file args bypass excludes."""
    files: list[Path] = []
    seen: set[Path] = set()

    def add(path: Path) -> None:
        resolved = path.resolve()
        if resolved not in seen:
            seen.add(resolved)
            files.append(path)

    for path in paths:
        if not path.exists():
            raise UsageError(f"no such file or directory: {path}")
        if path.is_file():
            add(path)
            continue
        for sub in sorted(path.rglob("*.py")):
            if not config.is_excluded(sub):
                add(sub)
    return files


def lint_paths(
    paths: Sequence[Path],
    *,
    config: Optional[LintConfig] = None,
    rules: Optional[Sequence[str]] = None,
    extra_exclude: Sequence[str] = (),
    baseline_path: Optional[Path] = None,
    use_baseline: bool = True,
) -> LintResult:
    """Lint files/trees; raises :class:`UsageError` on bad input."""
    paths = [Path(p) for p in paths]
    if config is None:
        config = load_config(paths)
    if extra_exclude:
        config.exclude = tuple(config.exclude) + tuple(extra_exclude)
    if rules is not None:
        known = set(all_rule_ids())
        unknown = sorted(set(rules) - known)
        if unknown:
            raise UsageError(
                f"unknown rule id(s): {', '.join(unknown)} "
                f"(known: {', '.join(sorted(known))})"
            )
    disabled = set(config.disable)
    effective_rules = (
        [r for r in (rules or all_rule_ids()) if r not in disabled]
        if (rules is not None or disabled)
        else None
    )

    result = LintResult()
    findings: list[Finding] = []
    for path in _collect_files(paths, config):
        try:
            source = path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as exc:
            raise UsageError(f"cannot read {path}: {exc}") from exc
        display = config.relpath(path)
        try:
            findings.extend(
                lint_source(
                    source,
                    path=display,
                    canonical=config.is_canonical(path)
                    or is_canonical_marked(source),
                    rules=effective_rules,
                )
            )
        except SyntaxError as exc:
            raise UsageError(
                f"{display}:{exc.lineno or 0}: parse-error {exc.msg}"
            ) from exc
        result.checked_files += 1
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))

    if use_baseline:
        bl_path = baseline_path or config.baseline_path()
        baseline = load_baseline(bl_path) if bl_path else None
        if baseline:
            live, grandfathered, stale = split_baselined(findings, baseline)
            result.findings = live
            result.grandfathered = grandfathered
            result.stale_baseline = stale
            return result
    result.findings = findings
    return result


def run(
    paths: Sequence[str],
    *,
    out: TextIO,
    fmt: str = "text",
    rules: Optional[Sequence[str]] = None,
    extra_exclude: Sequence[str] = (),
    baseline: Optional[str] = None,
    no_baseline: bool = False,
    write_baseline_to: Optional[str] = None,
    error: Optional[Callable[[str], None]] = None,
) -> int:
    """Full CLI behaviour over parsed arguments; returns the exit code.

    *error* reports usage errors (argparse's ``parser.error`` when the
    caller has one — it prints the synopsis and exits 2); the default
    prints to stderr and returns 2 directly.
    """
    try:
        path_objs = [Path(p) for p in paths]
        config = load_config(path_objs)
        if not paths:
            path_objs = [config.root / inc for inc in config.include]
            path_objs = [p for p in path_objs if p.exists()]
            if not path_objs:
                raise UsageError(
                    "no paths given and no default include paths exist"
                )
        result = lint_paths(
            path_objs,
            config=config,
            rules=rules,
            extra_exclude=extra_exclude,
            baseline_path=Path(baseline) if baseline else None,
            use_baseline=not no_baseline and write_baseline_to is None,
        )
    except UsageError as exc:
        if error is not None:
            error(str(exc))  # argparse path: prints usage, raises SystemExit(2)
        else:
            print(f"repro lint: error: {exc}", file=sys.stderr)
        return 2

    if write_baseline_to is not None:
        write_baseline(Path(write_baseline_to), result.findings)
        print(
            f"wrote {len(result.findings)} finding(s) to {write_baseline_to}",
            file=out,
        )
        return 0

    if fmt == "json":
        json.dump(result.to_json(), out, indent=2)
        out.write("\n")
        return result.exit_code

    for finding in result.findings:
        print(finding.render(), file=out)
    bits = [f"{len(result.findings)} finding(s)", f"{result.checked_files} file(s)"]
    if result.grandfathered:
        bits.append(f"{len(result.grandfathered)} baselined")
    if result.stale_baseline:
        bits.append(
            f"{result.stale_baseline} stale baseline entr"
            f"{'y' if result.stale_baseline == 1 else 'ies'} "
            "(regenerate with --write-baseline)"
        )
    print("repro lint: " + ", ".join(bits), file=out)
    return result.exit_code


def main(argv: Optional[Sequence[str]] = None, out: Optional[TextIO] = None) -> int:
    """``python -m repro.analysis`` entry point."""
    import argparse

    from .cliargs import add_lint_arguments

    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "Repo-specific static analysis: determinism hygiene, "
            "shared-memory lifecycle pairing, async blocking calls, "
            "API-surface drift."
        ),
    )
    add_lint_arguments(parser)
    args = parser.parse_args(argv)
    return run(
        args.paths,
        out=out or sys.stdout,
        fmt=args.format,
        rules=args.rule or None,
        extra_exclude=args.exclude,
        baseline=args.baseline,
        no_baseline=args.no_baseline,
        write_baseline_to=args.write_baseline,
        error=parser.error,
    )
