"""Repo-specific static analysis: the determinism & lifecycle linter.

The runtime parity and golden suites catch a contract violation only
after someone writes one *and* a test exercises it; this package makes
the repo's three load-bearing disciplines machine-checked on every
tree, before anything runs:

* **determinism hygiene** (``det-*``) — canonical modules draw
  randomness only from the seeded ``Lcg48`` substreams, never read
  wall clocks, and never let set-iteration order or ``id()`` reach an
  answer;
* **shared-memory lifecycle** (``shm-*``) — every segment allocation
  has a visible close/unlink path and every attach routes through
  ``shmplane.attach_segment`` (the resource-tracker bug class);
* **async hygiene** (``async-*``) — nothing blocks the serving tier's
  event loop;
* **API surface** (``api-*``) + general hygiene (``hyg-*``) —
  ``__all__`` stays honest, deprecated shims warn, broad excepts
  don't swallow silently.

Entry points: ``repro lint`` (the CLI subcommand), ``python -m
repro.analysis``, and :func:`lint_source` for embedding (the docs
harness lints documented code blocks with it).  Escape hatches:
``# repro: allow[rule-id]`` pragmas and the committed baseline file —
see docs/ARCHITECTURE.md, "Correctness tooling".
"""

from .base import Checker, LintContext
from .engine import LintResult, lint_paths, lint_source, main, run
from .findings import Finding, Rule
from .rules import ALL_CHECKERS, all_rule_ids, all_rules

__all__ = [
    "ALL_CHECKERS",
    "Checker",
    "Finding",
    "LintContext",
    "LintResult",
    "Rule",
    "all_rule_ids",
    "all_rules",
    "lint_paths",
    "lint_source",
    "main",
    "run",
]
