"""Shared-memory lifecycle pairing: no leaked and no foreign segments.

Two contracts from ARCHITECTURE.md's plane sections:

* every segment allocation (``allocate_segment`` or a raw
  ``SharedMemory(create=True)``) must have a visible release path —
  a ``with`` block, a ``try``/``finally``, handing the object to an
  owner (``SegmentOwner`` subclasses register close/unlink), storing
  it on ``self``, or returning it to a caller that owns it;
* attaching by name must go through ``shmplane.attach_segment`` — a
  raw ``SharedMemory(name=...)`` registers the segment with the
  attacher's resource tracker, the exact 3.11 lifecycle bug (forked
  workers' trackers unlinking the parent's live blocks) PR 5 fixed.
"""

from __future__ import annotations

import ast
from typing import Optional

from ..base import Checker
from ..findings import Rule

__all__ = ["ShmLifecycleChecker", "ShmRawAttachChecker"]


def _attach_parents(tree: ast.AST) -> None:
    for parent in ast.walk(tree):
        for child in ast.iter_child_nodes(parent):
            child._repro_parent = parent  # type: ignore[attr-defined]


def _parent(node: ast.AST) -> Optional[ast.AST]:
    return getattr(node, "_repro_parent", None)


def _create_true(node: ast.Call) -> bool:
    return any(
        kw.arg == "create"
        and isinstance(kw.value, ast.Constant)
        and kw.value.value is True
        for kw in node.keywords
    )


def _is_allocation(node: ast.Call, qual: Optional[str]) -> bool:
    if qual is None:
        return False
    name = qual.rpartition(".")[2]
    if name == "allocate_segment":
        return True
    return name == "SharedMemory" and _create_true(node)


def _contains_name(tree_nodes, name: str) -> bool:
    for stmt in tree_nodes:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Name) and node.id == name:
                return True
    return False


class ShmLifecycleChecker(Checker):
    """shm-lifecycle: every allocation needs a visible release path."""

    rules = (
        Rule(
            "shm-lifecycle",
            "segment allocated without a close/unlink path "
            "(with, try/finally, owner object, or return)",
        ),
    )

    def run(self):
        """Two passes: attach parent pointers, then judge each allocation."""
        _attach_parents(self.ctx.tree)
        return super().run()

    def visit_Call(self, node: ast.Call) -> None:
        """Flag an allocation call with no visible release path."""
        if _is_allocation(node, self.qualname(node.func)):
            if not self._protected(node):
                self.emit(
                    node,
                    "shm-lifecycle",
                    "shared-memory allocation has no visible release "
                    "path; put it in a with/try-finally, hand it to a "
                    "SegmentOwner, or return it to an owning caller",
                )
        self.generic_visit(node)

    def _protected(self, call: ast.Call) -> bool:
        # Climb: allocation nested in a return, a with item, or another
        # call (ownership handed straight to a constructor) is paired.
        node: ast.AST = call
        parent = _parent(node)
        while parent is not None:
            if isinstance(parent, ast.Return):
                return True
            if isinstance(parent, ast.withitem):
                return True
            if isinstance(parent, ast.Call) and node is not parent.func:
                return True
            if isinstance(parent, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Module)):
                break
            node, parent = parent, _parent(parent)
        # Otherwise the result must land in a name that some later
        # statement releases or hands off.
        stmt = call
        while stmt is not None and not isinstance(stmt, ast.Assign):
            stmt = _parent(stmt)
        if stmt is None or len(stmt.targets) != 1:
            return False
        target = stmt.targets[0]
        if not isinstance(target, ast.Name):
            # self._shm = allocate_segment(...): stored on an owner.
            return isinstance(target, ast.Attribute)
        name = target.id
        scope = stmt
        while not isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Module)):
            scope = _parent(scope)
        for node in ast.walk(scope):
            if isinstance(node, ast.Try) and _contains_name(node.finalbody, name):
                return True
            if isinstance(node, ast.With) and _contains_name(
                [item.context_expr for item in node.items], name
            ):
                return True
            if isinstance(node, ast.Return) and node.value is not None and _contains_name(
                [node.value], name
            ):
                return True
            if (
                isinstance(node, ast.Call)
                and node is not call
                and _contains_name(node.args + [kw.value for kw in node.keywords], name)
            ):
                return True
            if (
                isinstance(node, ast.Assign)
                and node is not stmt
                and any(isinstance(t, ast.Attribute) for t in node.targets)
                and _contains_name([node.value], name)
            ):
                return True
        return False


class ShmRawAttachChecker(Checker):
    """shm-raw-attach: attaches must route through attach_segment."""

    rules = (
        Rule(
            "shm-raw-attach",
            "raw SharedMemory(name=...) attach outside attach_segment "
            "(registers with the wrong resource tracker)",
        ),
    )

    def __init__(self, ctx) -> None:
        super().__init__(ctx)
        self._function_stack: list[str] = []

    def _visit_function(self, node) -> None:
        """Track the enclosing function name (attach_segment is exempt)."""
        self._function_stack.append(node.name)
        self.generic_visit(node)
        self._function_stack.pop()

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    def visit_Call(self, node: ast.Call) -> None:
        """Flag SharedMemory attach-by-name outside attach_segment."""
        qual = self.qualname(node.func)
        if (
            qual is not None
            and qual.rpartition(".")[2] == "SharedMemory"
            and not _create_true(node)
            and "attach_segment" not in self._function_stack
        ):
            self.emit(
                node,
                "shm-raw-attach",
                "raw SharedMemory attach registers the segment with "
                "this process's resource tracker (it will unlink the "
                "owner's live segment at exit); use "
                "shmplane.attach_segment instead",
            )
        self.generic_visit(node)
