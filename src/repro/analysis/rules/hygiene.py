"""Lifecycle hygiene: broad exception handlers must not swallow silently.

A ``try``/``except Exception: pass`` around a lifecycle path (segment
release, stream close, index building) converts a real bug into a
silent leak.  Broad catches *can* be load-bearing — ``__del__`` during
interpreter shutdown, cleanup that must never mask the original error
— but then the code must say so: narrow the exception types, or keep
the broad catch with a ``# repro: allow[hyg-broad-except]`` pragma and
the one-line justification next to it.
"""

from __future__ import annotations

import ast

from ..base import Checker
from ..findings import Rule

__all__ = ["BroadExceptChecker"]


def _is_broad(handler: ast.ExceptHandler) -> bool:
    if handler.type is None:
        return True
    names = []
    if isinstance(handler.type, (ast.Name, ast.Attribute)):
        names = [handler.type]
    elif isinstance(handler.type, ast.Tuple):
        names = list(handler.type.elts)
    for node in names:
        ident = (
            node.id
            if isinstance(node, ast.Name)
            else node.attr if isinstance(node, ast.Attribute) else ""
        )
        if ident in {"Exception", "BaseException"}:
            return True
    return False


def _is_silent(body: list[ast.stmt]) -> bool:
    """True when the handler observably does nothing with the error."""
    for stmt in body:
        if isinstance(stmt, (ast.Pass, ast.Continue, ast.Break)):
            continue
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
            continue  # docstring / ellipsis
        if isinstance(stmt, ast.Return):
            value = stmt.value
            if value is None or isinstance(
                value, (ast.Constant, ast.Dict, ast.List, ast.Tuple, ast.Set)
            ):
                continue  # bare literal fallback: the swallow idiom
        return False
    return True


class BroadExceptChecker(Checker):
    """hyg-broad-except: silent broad catches hide lifecycle bugs."""

    rules = (
        Rule(
            "hyg-broad-except",
            "broad except handler silently swallows the error "
            "(narrow it, or pragma with a justification)",
        ),
    )

    def visit_Try(self, node: ast.Try) -> None:
        """Flag broad handlers whose body silently swallows the error."""
        for handler in node.handlers:
            if _is_broad(handler) and _is_silent(handler.body):
                self.emit(
                    handler,
                    "hyg-broad-except",
                    "broad except swallows every error here; catch the "
                    "specific exceptions, or keep it with "
                    "# repro: allow[hyg-broad-except] and say why the "
                    "broad catch is load-bearing",
                )
        self.generic_visit(node)
