"""Determinism hygiene: canonical modules must be seed-reproducible.

The repo's headline contract — byte-identical answers across engines,
accelerators, worker counts, and the HTTP service — only holds while
every canonical module draws randomness from the repo's counter-based
``Lcg48`` substreams and never lets hash order, wall clocks, or memory
addresses leak into results.  These rules enforce that statically; the
scope is the ``canonical`` config patterns (core, geometry, rng,
parallel, the scene generator) plus any file carrying a
``# repro: canonical-module`` marker.
"""

from __future__ import annotations

import ast

from ..base import Checker
from ..findings import Rule

__all__ = [
    "RandomSourceChecker",
    "WallClockChecker",
    "UnorderedIterationChecker",
    "IdOrderingChecker",
]

#: Call targets whose results depend on the wall clock or OS entropy.
_WALLCLOCK_CALLS = {
    "time.time",
    "time.time_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
    "os.urandom",
}

#: Builtins that realize their argument's iteration order.
_ORDER_REALIZERS = {"list", "tuple", "iter", "enumerate"}


class RandomSourceChecker(Checker):
    """det-random: only ``repro.rng`` randomness in canonical modules."""

    rules = (
        Rule(
            "det-random",
            "stdlib random / numpy.random in a canonical module "
            "(use repro.rng.Lcg48 substreams)",
            scope="canonical",
        ),
    )

    def visit_Import(self, node: ast.Import) -> None:
        """Flag ``import random`` / ``import numpy.random`` in canonical scope."""
        for alias in node.names:
            top = alias.name.partition(".")[0]
            if top == "random" or alias.name.startswith("numpy.random"):
                self.emit(
                    node,
                    "det-random",
                    f"import of {alias.name!r} in a canonical module; "
                    "draw from the seeded Lcg48 substreams instead",
                )
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        """Flag ``from random import ...`` and numpy.random equivalents."""
        module = node.module or ""
        hit = (
            module == "random"
            or module.startswith("random.")
            or module.startswith("numpy.random")
            or (module == "numpy" and any(a.name == "random" for a in node.names))
        )
        if hit:
            self.emit(
                node,
                "det-random",
                f"import from {module!r} in a canonical module; "
                "draw from the seeded Lcg48 substreams instead",
            )
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        """Flag attribute reads reaching random/numpy.random via aliases."""
        qual = self.qualname(node)
        if qual is not None:
            if qual == "numpy.random" or qual.startswith("numpy.random."):
                self.emit(
                    node,
                    "det-random",
                    f"use of {qual} in a canonical module; "
                    "draw from the seeded Lcg48 substreams instead",
                )
                return  # one finding per chain, not one per attribute
            if qual.startswith("random.") and self.ctx.imports.get("random"):
                self.emit(
                    node,
                    "det-random",
                    f"use of {qual} in a canonical module; "
                    "draw from the seeded Lcg48 substreams instead",
                )
                return
        self.generic_visit(node)


class WallClockChecker(Checker):
    """det-wallclock: results must not read clocks or OS entropy."""

    rules = (
        Rule(
            "det-wallclock",
            "wall-clock / OS-entropy call in a canonical module",
            scope="canonical",
        ),
    )

    def visit_Call(self, node: ast.Call) -> None:
        """Flag wall-clock reads; interval timers (perf_counter) stay legal."""
        qual = self.qualname(node.func)
        if qual in _WALLCLOCK_CALLS:
            self.emit(
                node,
                "det-wallclock",
                f"call to {qual} in a canonical module; results must be "
                "a pure function of the seed (time.perf_counter is fine "
                "for timing that never feeds an answer)",
            )
        self.generic_visit(node)


def _is_set_expr(node: ast.AST) -> bool:
    """Syntactically certain to evaluate to a set/frozenset."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in {"set", "frozenset"}
    ):
        return True
    # Binary set algebra over set expressions (a | b on literals).
    if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.BitOr, ast.BitAnd, ast.Sub)):
        return _is_set_expr(node.left) or _is_set_expr(node.right)
    return False


class UnorderedIterationChecker(Checker):
    """det-unordered-iter: set iteration order must never reach results.

    Set iteration order varies with hash seeding (``PYTHONHASHSEED``),
    so a loop, comprehension, or order-realizing call (``list``,
    ``tuple``, ``enumerate``, ``iter``, ``str.join``) over a set
    expression is flagged; ``sorted(...)`` around the set is the fix
    and silences the rule by construction.
    """

    rules = (
        Rule(
            "det-unordered-iter",
            "iteration over a set feeds accumulation/serialization "
            "(wrap in sorted(...))",
            scope="canonical",
        ),
    )

    _MESSAGE = (
        "iterating a set here has hash-seed-dependent order; "
        "wrap the set in sorted(...) before it feeds anything ordered"
    )

    def visit_For(self, node: ast.For) -> None:
        """Flag ``for x in <set expression>`` without a sorted() realisation."""
        if _is_set_expr(node.iter):
            self.emit(node.iter, "det-unordered-iter", self._MESSAGE)
        self.generic_visit(node)

    def _check_comprehension(self, node) -> None:
        """Comprehensions over unordered sources leak iteration order."""
        for gen in node.generators:
            if _is_set_expr(gen.iter):
                self.emit(gen.iter, "det-unordered-iter", self._MESSAGE)
        self.generic_visit(node)

    visit_ListComp = _check_comprehension
    visit_SetComp = _check_comprehension
    visit_DictComp = _check_comprehension
    visit_GeneratorExp = _check_comprehension

    def visit_Call(self, node: ast.Call) -> None:
        """Flag order-realising calls (list/tuple/iter/enumerate, .join) on sets."""
        realizes = (
            isinstance(node.func, ast.Name) and node.func.id in _ORDER_REALIZERS
        ) or (
            isinstance(node.func, ast.Attribute) and node.func.attr == "join"
        )
        if realizes and node.args and _is_set_expr(node.args[0]):
            self.emit(node.args[0], "det-unordered-iter", self._MESSAGE)
        self.generic_visit(node)


class IdOrderingChecker(Checker):
    """det-id-order: ``id()`` is an address, not a stable sort key."""

    rules = (
        Rule(
            "det-id-order",
            "ordering by id() in a canonical module "
            "(addresses vary run to run)",
            scope="canonical",
        ),
    )

    _MESSAGE = (
        "key uses id(): object addresses differ across runs and "
        "processes; order by a canonical field (e.g. patch id) instead"
    )

    def visit_Call(self, node: ast.Call) -> None:
        """Flag sorted/min/max/.sort keyed on id() — address-order is per-run."""
        orders = (
            isinstance(node.func, ast.Name)
            and node.func.id in {"sorted", "min", "max"}
        ) or (isinstance(node.func, ast.Attribute) and node.func.attr == "sort")
        if orders:
            for kw in node.keywords:
                if kw.arg != "key":
                    continue
                if isinstance(kw.value, ast.Name) and kw.value.id == "id":
                    self.emit(node, "det-id-order", self._MESSAGE)
                elif isinstance(kw.value, ast.Lambda) and any(
                    isinstance(inner, ast.Call)
                    and isinstance(inner.func, ast.Name)
                    and inner.func.id == "id"
                    for inner in ast.walk(kw.value.body)
                ):
                    self.emit(node, "det-id-order", self._MESSAGE)
        self.generic_visit(node)
