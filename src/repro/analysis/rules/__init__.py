"""The rule registry: every checker the engine runs, by family.

Adding a rule = writing a :class:`~repro.analysis.base.Checker`
subclass and listing it here; the engine, CLI ``--rule`` filter,
pragma machinery, fixtures coverage test, and docs table all key off
this registry.
"""

from __future__ import annotations

from ..findings import Rule
from .apisurface import AllResolvedChecker, ShimWarnsChecker
from .asyncrules import AsyncBlockingChecker
from .determinism import (
    IdOrderingChecker,
    RandomSourceChecker,
    UnorderedIterationChecker,
    WallClockChecker,
)
from .hygiene import BroadExceptChecker
from .shm import ShmLifecycleChecker, ShmRawAttachChecker

__all__ = ["ALL_CHECKERS", "all_rules", "all_rule_ids"]

ALL_CHECKERS = (
    RandomSourceChecker,
    WallClockChecker,
    UnorderedIterationChecker,
    IdOrderingChecker,
    ShmLifecycleChecker,
    ShmRawAttachChecker,
    AsyncBlockingChecker,
    AllResolvedChecker,
    ShimWarnsChecker,
    BroadExceptChecker,
)


def all_rules() -> tuple[Rule, ...]:
    """Every Rule the registered checkers implement, in registry order."""
    return tuple(rule for checker in ALL_CHECKERS for rule in checker.rules)


def all_rule_ids() -> tuple[str, ...]:
    """Every known rule id, in registry order."""
    return tuple(rule.id for rule in all_rules())
