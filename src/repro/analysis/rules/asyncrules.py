"""Async hygiene: nothing may block the event loop.

The serving tier (ARCHITECTURE.md, "Serving tier") runs every trace on
an executor thread precisely so the one asyncio loop stays responsive
to admission, streaming, and health checks.  A single synchronous
``session.simulate`` or ``time.sleep`` inside a coroutine stalls every
connected client, and no runtime test reliably catches it — the loop
just gets slow.  These rules flag blocking calls lexically inside
``async def`` bodies; the sanctioned escape is exactly what the
service does already: wrap the call in a sync closure and run it via
``loop.run_in_executor`` / ``asyncio.to_thread`` (the closure is a
nested sync ``def``, which these rules deliberately do not descend
into).
"""

from __future__ import annotations

import ast

from ..base import Checker
from ..findings import Rule

__all__ = ["AsyncBlockingChecker"]

#: Session methods that trace/render synchronously (seconds of work).
_SESSION_BLOCKERS_PREFIX = "simulate"
_SESSION_BLOCKERS = {"close", "render", "profile"}

#: Socket methods that block the calling thread.
_SOCKET_OPS = {"recv", "recv_into", "accept", "connect", "sendall", "listen", "bind"}


def _receiver_name(node: ast.Attribute) -> str:
    """The final identifier of the call receiver (``a.b.session`` -> ``session``)."""
    if isinstance(node.value, ast.Attribute):
        return node.value.attr
    if isinstance(node.value, ast.Name):
        return node.value.id
    return ""


class AsyncBlockingChecker(Checker):
    """async-blocking / async-future-result inside coroutine bodies."""

    rules = (
        Rule(
            "async-blocking",
            "synchronous blocking call inside async def "
            "(route through run_in_executor / to_thread)",
        ),
        Rule(
            "async-future-result",
            "Future.result() inside async def (await the future instead)",
        ),
    )

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        """Walk an async body, skipping nested sync closures (the executor idiom)."""
        for stmt in node.body:
            self._walk_async(stmt)
        # Nested async defs are visited through _walk_async already;
        # do not generic_visit (it would double-count them).

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        # Sync functions may block freely; async defs nested inside
        # them still need checking.
        """Sync defs are skipped wholesale; their nested async defs are not."""
        self.generic_visit(node)

    def _walk_async(self, node: ast.AST) -> None:
        """Walk a coroutine body, skipping nested sync callables.

        A nested sync ``def`` or ``lambda`` is the executor-closure
        idiom — its body runs on a worker thread, so blocking calls
        there are the fix, not the bug.
        """
        if isinstance(node, (ast.FunctionDef, ast.Lambda)):
            return
        if isinstance(node, ast.AsyncFunctionDef):
            self.visit_AsyncFunctionDef(node)
            return
        if isinstance(node, ast.Call):
            self._check_call(node)
        for child in ast.iter_child_nodes(node):
            self._walk_async(child)

    def _check_call(self, node: ast.Call) -> None:
        qual = self.qualname(node.func)
        if qual == "time.sleep":
            self.emit(
                node,
                "async-blocking",
                "time.sleep blocks the event loop; use await "
                "asyncio.sleep(...)",
            )
            return
        if qual == "socket.socket":
            self.emit(
                node,
                "async-blocking",
                "raw socket created inside async def; use the asyncio "
                "stream APIs (open_connection/start_server)",
            )
            return
        if not isinstance(node.func, ast.Attribute):
            return
        attr = node.func.attr
        receiver = _receiver_name(node.func)
        if receiver == "session" and (
            attr.startswith(_SESSION_BLOCKERS_PREFIX) or attr in _SESSION_BLOCKERS
        ):
            self.emit(
                node,
                "async-blocking",
                f"session.{attr} traces synchronously and stalls the "
                "loop; wrap it in a sync closure and run it via "
                "loop.run_in_executor (see service/service.py)",
            )
            return
        if attr == "result" and not node.args and not node.keywords:
            self.emit(
                node,
                "async-future-result",
                "Future.result() blocks (or raises InvalidStateError) "
                "on the loop thread; await the future instead",
            )
            return
        if attr in _SOCKET_OPS and "sock" in receiver.lower():
            self.emit(
                node,
                "async-blocking",
                f"synchronous socket op .{attr}() inside async def; "
                "use the asyncio stream APIs",
            )
