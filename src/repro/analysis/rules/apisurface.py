"""API-surface drift: ``__all__`` honesty and loud deprecations.

``__all__`` is the public contract the API lockdown tests pin; an
entry that no longer resolves to a defined name turns ``from repro.x
import *`` into an ImportError at the first consumer.  And a shim
documented as deprecated but silent about it (no
``warnings.warn(DeprecationWarning)``) strands callers on the old
surface forever — the deprecation policy in ``repro/api`` requires
every shim to warn.
"""

from __future__ import annotations

import ast
import re

from ..base import Checker
from ..findings import Rule

__all__ = ["AllResolvedChecker", "ShimWarnsChecker"]

#: A docstring declares deprecation via the Sphinx directive or by
#: leading with the word (prose merely *mentioning* shims elsewhere in
#: the module must not conscript a helper into warning).
_DEPRECATED_RE = re.compile(
    r"(?m)^\s*\.\.\s+deprecated::|\A\s*deprecat", re.IGNORECASE
)


def _module_scope_nodes(tree: ast.Module):
    """Statements reachable at import time, skipping callable bodies."""
    stack = list(tree.body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        if isinstance(node, ast.ClassDef):
            continue  # class attrs are not module names
        stack.extend(ast.iter_child_nodes(node))


class AllResolvedChecker(Checker):
    """api-all-undefined: every __all__ entry must name a real thing."""

    rules = (
        Rule(
            "api-all-undefined",
            "__all__ entry does not resolve to a defined module name",
        ),
    )

    def run(self):
        """Collect module-scope bindings first, then resolve ``__all__``."""
        tree = self.ctx.tree
        defined: set[str] = set()
        all_entries: list[ast.Constant] = []
        star_import = False
        for node in _module_scope_nodes(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                defined.add(node.name)
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    defined.add(alias.asname or alias.name.partition(".")[0])
            elif isinstance(node, ast.ImportFrom):
                for alias in node.names:
                    if alias.name == "*":
                        star_import = True
                    else:
                        defined.add(alias.asname or alias.name)
            elif isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    if isinstance(target, ast.Name):
                        defined.add(target.id)
                    elif isinstance(target, (ast.Tuple, ast.List)):
                        for elt in target.elts:
                            if isinstance(elt, ast.Name):
                                defined.add(elt.id)
                    if (
                        isinstance(target, ast.Name)
                        and target.id == "__all__"
                        and isinstance(
                            getattr(node, "value", None), (ast.List, ast.Tuple)
                        )
                    ):
                        for elt in node.value.elts:
                            if isinstance(elt, ast.Constant) and isinstance(
                                elt.value, str
                            ):
                                all_entries.append(elt)
            elif isinstance(node, (ast.For, ast.While, ast.With, ast.Try, ast.If)):
                pass  # children already on the stack
        if star_import:
            return self.findings  # names are unknowable; stay silent
        for entry in all_entries:
            if entry.value not in defined:
                self.emit(
                    entry,
                    "api-all-undefined",
                    f"__all__ names {entry.value!r} but the module never "
                    "defines it (drift between the export list and the "
                    "module body)",
                )
        return self.findings


class ShimWarnsChecker(Checker):
    """api-shim-nowarn: deprecated shims must warn at runtime."""

    rules = (
        Rule(
            "api-shim-nowarn",
            "docstring declares deprecation but no "
            "warnings.warn(DeprecationWarning) in the body",
        ),
    )

    def _check_deprecated(self, node) -> None:
        """Flag a deprecated-docstring'd def/class that never warns."""
        doc = ast.get_docstring(node)
        if doc and _DEPRECATED_RE.search(doc) and not self._warns(node):
            self.emit(
                node,
                "api-shim-nowarn",
                f"{node.name!r} documents itself as deprecated but never "
                "calls warnings.warn(..., DeprecationWarning); silent "
                "shims strand callers on the old surface",
            )
        self.generic_visit(node)

    visit_FunctionDef = _check_deprecated
    visit_AsyncFunctionDef = _check_deprecated
    visit_ClassDef = _check_deprecated

    def _warns(self, node) -> bool:
        for inner in ast.walk(node):
            if not isinstance(inner, ast.Call):
                continue
            qual = self.qualname(inner.func)
            if qual is None or qual.rpartition(".")[2] != "warn":
                continue
            mentions = inner.args + [kw.value for kw in inner.keywords]
            for arg in mentions:
                for sub in ast.walk(arg):
                    name = (
                        sub.id
                        if isinstance(sub, ast.Name)
                        else sub.attr if isinstance(sub, ast.Attribute) else None
                    )
                    if name is not None and name.endswith("DeprecationWarning"):
                        return True
        return False
