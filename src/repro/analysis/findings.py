"""Finding and rule records shared by every checker and the engine."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Finding", "Rule"]


@dataclass(frozen=True)
class Rule:
    """One enforceable contract: a stable id plus its one-line summary."""

    id: str
    summary: str
    #: "all" runs on every scanned file; "canonical" only on modules the
    #: determinism contract covers (config ``canonical`` patterns or a
    #: ``# repro: canonical-module`` marker in the file).
    scope: str = "all"


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location.

    ``path`` is the display path (relative to the lint root when the
    file lives under it); the ``(path, rule, message)`` triple is the
    baseline fingerprint, deliberately excluding ``line`` so unrelated
    edits above a grandfathered finding do not un-baseline it.
    """

    path: str
    line: int
    col: int
    rule: str
    message: str

    def fingerprint(self) -> tuple[str, str, str]:
        """Line-number-free identity used for baseline matching."""
        return (self.path, self.rule, self.message)

    def render(self) -> str:
        """The ``path:line: rule-id message`` contract line."""
        return f"{self.path}:{self.line}: {self.rule} {self.message}"

    def to_json(self) -> dict:
        """JSON-serialisable dict (includes the line, unlike the fingerprint)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
        }
