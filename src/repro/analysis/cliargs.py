"""The lint argument set, shared by ``repro lint`` and ``-m repro.analysis``.

One definition keeps the two entry points' flags, defaults, and help
text from drifting; both parsers route through
:func:`repro.analysis.engine.run` afterwards.
"""

from __future__ import annotations

import argparse

__all__ = ["add_lint_arguments"]


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the shared `repro lint` argument surface to *parser*."""
    parser.add_argument(
        "paths",
        nargs="*",
        help=(
            "files or directories to lint (default: the [tool.repro.lint] "
            "include paths next to the nearest pyproject.toml)"
        ),
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="text = 'path:line: rule-id message' lines; json = machine-readable",
    )
    parser.add_argument(
        "--rule",
        action="append",
        default=[],
        metavar="RULE-ID",
        help="run only this rule (repeatable); unknown ids are usage errors",
    )
    parser.add_argument(
        "--exclude",
        action="append",
        default=[],
        metavar="PATTERN",
        help=(
            "additionally skip paths matching PATTERN during directory "
            "walks (root-relative prefix or fnmatch glob; repeatable)"
        ),
    )
    parser.add_argument(
        "--baseline",
        metavar="PATH",
        default=None,
        help="baseline file overriding the configured one",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="report grandfathered findings as live (audit mode)",
    )
    parser.add_argument(
        "--write-baseline",
        metavar="PATH",
        default=None,
        help="write the current findings to PATH as the new baseline and exit 0",
    )
