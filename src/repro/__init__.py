"""repro — reproduction of *Parallel Hierarchical Global Illumination* (Snell, 1997).

The package implements **Photon**, a Monte Carlo light-transport global
illumination solver with a four-dimensional adaptive histogram answer
representation, together with its shared-memory and distributed-memory
parallelizations, the cluster cost models used to reproduce the paper's
speedup studies, and the chapter-2 baseline algorithms (Whitted ray
tracing and matrix/hierarchical radiosity).

Quick start::

    from repro.core import PhotonSimulator, SimulationConfig, RadianceField
    from repro.scenes import cornell_box

    scene = cornell_box()
    result = PhotonSimulator(scene, SimulationConfig(n_photons=20_000)).run()
    field = RadianceField(scene, result.forest)

See README.md for the architecture overview and EXPERIMENTS.md for the
paper-versus-measured record of every table and figure.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
