"""repro — reproduction of *Parallel Hierarchical Global Illumination* (Snell, 1997).

The package implements **Photon**, a Monte Carlo light-transport global
illumination solver with a four-dimensional adaptive histogram answer
representation, together with its shared-memory and distributed-memory
parallelizations, the cluster cost models used to reproduce the paper's
speedup studies, and the chapter-2 baseline algorithms (Whitted ray
tracing and matrix/hierarchical radiosity).

Quick start (the stable public surface is :mod:`repro.api` — a scene
compiled once, served by a persistent session)::

    from repro.api import RenderSession, SimulateRequest

    with RenderSession("cornell-box") as session:
        result = session.simulate(SimulateRequest(n_photons=20_000))
        image = session.render(result)  # the scene's registered view

See README.md for the architecture overview and EXPERIMENTS.md for the
paper-versus-measured record of every table and figure.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
