"""Simulated evaluation platforms: machine cost models and speed traces."""

from .machine import MachineSpec, PER_EVENT_BYTES
from .platforms import INDY_CLUSTER, PLATFORMS, POWER_ONYX, SP2, platform_by_name
from .runner import SpeedSample, SpeedTrace, simulate_trace, trace_family
from .workload import SceneProfile, profile_scene

__all__ = [
    "INDY_CLUSTER",
    "MachineSpec",
    "PER_EVENT_BYTES",
    "PLATFORMS",
    "POWER_ONYX",
    "SP2",
    "SceneProfile",
    "SpeedSample",
    "SpeedTrace",
    "platform_by_name",
    "profile_scene",
    "simulate_trace",
    "trace_family",
]
