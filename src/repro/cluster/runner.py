"""Discrete-event speed traces: the x-axes of Figures 5.6-5.15.

The paper presents "the full speedup picture as a function of execution
time": each simulation is a sequence of photon batches, the per-batch
photons-per-second is plotted against cumulative time, and traces for
different processor counts overlay to reveal speedup.  This module
generates those traces deterministically from a platform cost model and
a measured scene profile, driving the same adaptive batch-size
controller the real code uses (which is also how Table 5.3 falls out).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..core.batch import AdaptiveBatchController
from .machine import MachineSpec
from .workload import SceneProfile

__all__ = ["SpeedSample", "SpeedTrace", "simulate_trace", "trace_family"]


@dataclass(frozen=True)
class SpeedSample:
    """One point of a speed-vs-time trace.

    Attributes:
        time: Simulated seconds since program start (end of the batch).
        rate: Photons per second over the batch, summed across ranks.
        cumulative_photons: Total photons completed by *time*.
    """

    time: float
    rate: float
    cumulative_photons: int


@dataclass
class SpeedTrace:
    """A full execution trace for one (platform, scene, ranks) triple."""

    platform: str
    scene: str
    ranks: int
    samples: list[SpeedSample] = field(default_factory=list)

    def final_rate(self) -> float:
        """Rate of the last batch (the long-run plateau)."""
        if not self.samples:
            return 0.0
        return self.samples[-1].rate

    def rate_at(self, time: float) -> float:
        """Rate of the batch in flight at *time* (0 before the first point).

        The paper's fixed-time speedup reads traces exactly this way:
        "one can interpolate fixed-time speedup by examining the graph
        values at a set time."
        """
        rate = 0.0
        for sample in self.samples:
            if sample.time <= time:
                rate = sample.rate
            else:
                break
        return rate

    def photons_within(self, time: float) -> int:
        """Photons completed by *time* (Fig. 5.16's fixed-time budgets)."""
        done = 0
        for sample in self.samples:
            if sample.time <= time:
                done = sample.cumulative_photons
            else:
                break
        return done


def simulate_trace(
    machine: MachineSpec,
    profile: SceneProfile,
    ranks: int,
    *,
    duration_s: float = 1000.0,
    max_batches: int = 4000,
    imbalance: float = 1.03,
    pilot_photons: int = 2000,
    controller: Optional[AdaptiveBatchController] = None,
) -> SpeedTrace:
    """Simulate one execution trace.

    Args:
        machine: Platform cost model.
        profile: Measured scene statistics.
        ranks: Processor count (1 = the best serial version: no pilot
            phase, no communication, matching the paper's insistence on
            comparing against real serial code).
        duration_s: Simulated run length.
        max_batches: Hard stop for pathological parameter choices.
        imbalance: Compute-phase stretch from residual load imbalance
            (feed the measured ``load_imbalance`` of a real assignment;
            1.03 is the Best-Fit typical, ~1.5+ for naive).
        pilot_photons: Photons of the redundant balancing phase.
        controller: Batch-size controller; a fresh paper-default one if
            omitted.

    Raises:
        ValueError: for ranks outside [1, machine.max_ranks] or a
            non-positive duration.
    """
    if not 1 <= ranks <= machine.max_ranks:
        raise ValueError(
            f"{machine.name} supports 1..{machine.max_ranks} ranks, got {ranks}"
        )
    if duration_s <= 0:
        raise ValueError("duration_s must be positive")
    if imbalance < 1.0:
        raise ValueError("imbalance factor cannot be below 1.0")
    controller = controller or AdaptiveBatchController()

    trace = SpeedTrace(platform=machine.name, scene=profile.name, ranks=ranks)
    t = 0.0
    photons = 0
    if ranks > 1:
        t += machine.startup_seconds(ranks, pilot_photons, profile)

    base_photon_s = machine.photon_seconds(profile)
    contention = machine.contention_factor(profile, ranks)

    for _ in range(max_batches):
        if t >= duration_s:
            break
        batch = controller.next_size()
        cache = machine.cache_factor(profile, ranks, photons)
        photon_s = base_photon_s * contention / cache
        compute = batch * photon_s * (imbalance if ranks > 1 else 1.0)
        events_forwarded = (
            batch * profile.events_per_photon * (ranks - 1) / ranks
            if ranks > 1
            else 0.0
        )
        comm = machine.batch_comm_seconds(ranks, events_forwarded)
        wall = compute + comm
        t += wall
        photons += batch * ranks
        rate = batch * ranks / wall
        controller.observe(rate)
        trace.samples.append(SpeedSample(time=t, rate=rate, cumulative_photons=photons))
    return trace


def trace_family(
    machine: MachineSpec,
    profile: SceneProfile,
    rank_counts: list[int],
    **kwargs,
) -> dict[int, SpeedTrace]:
    """Traces for several processor counts (one published figure)."""
    return {
        ranks: simulate_trace(machine, profile, ranks, **kwargs)
        for ranks in rank_counts
    }
