"""Parameterised machine cost models.

A :class:`MachineSpec` turns abstract per-photon work (from a
:class:`repro.cluster.workload.SceneProfile`) into seconds, and charges
the communication or memory-contention overheads that shape the paper's
speedup curves:

* **shared memory** — lock/memory contention grows with the processor
  count and with how *concentrated* the tally traffic is (a few hot bin
  trees serialise writers); large scenes spread traffic and scale
  better, exactly Figure 5.6-5.8's trend.
* **distributed memory** — per-batch all-to-all cost of
  ``latency + bytes/bandwidth`` per message, plus a buffered-copy term
  that is hidden by overlap at 2 ranks but not beyond (the SP-2 story
  for the 2 -> 4 processor dip), plus a startup phase (load balancing +
  geometry broadcast) that shifts the first trace point right on slow
  networks (the Indy cluster story).
* **cache bonus** — when a rank's share of the bin forest fits in cache
  but the whole forest does not, the per-photon rate improves (the
  superlinear 2-processor result on the Harpsichord room).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal

from .workload import SceneProfile

__all__ = ["MachineSpec", "PER_EVENT_BYTES"]

#: Wire bytes per forwarded tally event.  The paper's density-estimation
#: discussion uses 100 bytes per photon record; our wire events
#: (unit id + 4 coordinates + band) pack comparably.
PER_EVENT_BYTES = 100


@dataclass(frozen=True)
class MachineSpec:
    """Cost parameters of one platform.

    Attributes:
        name: Platform label (appears on every trace).
        kind: 'shared' or 'distributed'.
        max_ranks: Processor count of the studied configuration.
        seconds_per_work_unit: Serial cost of one abstract work unit
            (octree node visit); calibrates absolute photons/second.
        contention_coeff: Shared memory — strength of the lock/memory
            contention term ``1 + coeff * (P - 1) * concentration``.
        latency_s: Distributed — per-message latency.
        bandwidth_bytes_s: Distributed — link bandwidth.
        copy_s_per_byte: Distributed — buffered-messaging memory-copy
            cost per byte, charged only when ``ranks > copy_hidden_ranks``
            (below that the copy overlaps with computation).
        copy_hidden_ranks: Rank count up to which the copy is hidden.
        congestion_buffer_bytes: Message size beyond which transport
            buffers overflow and delays grow quadratically ("overly
            large batches may spend too much time in transmission, due
            to large message sizes").  This is what gives the adaptive
            batch controller an optimum to oscillate around (Table 5.3).
        startup_s_per_rank: Fixed startup charged per rank (process
            launch, geometry replication).
        cache_bytes: Per-processor cache capacity for the bin forest.
        cache_bonus: Rate multiplier when a rank's forest share fits in
            cache but the serial forest does not.
    """

    name: str
    kind: Literal["shared", "distributed"]
    max_ranks: int
    seconds_per_work_unit: float
    contention_coeff: float = 0.0
    latency_s: float = 0.0
    bandwidth_bytes_s: float = float("inf")
    copy_s_per_byte: float = 0.0
    copy_hidden_ranks: int = 2
    congestion_buffer_bytes: float = float("inf")
    startup_s_per_rank: float = 0.0
    cache_bytes: float = float("inf")
    cache_bonus: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in ("shared", "distributed"):
            raise ValueError(f"unknown machine kind {self.kind!r}")
        if self.seconds_per_work_unit <= 0:
            raise ValueError("seconds_per_work_unit must be positive")
        if self.max_ranks < 1:
            raise ValueError("max_ranks must be positive")

    # -- computation ------------------------------------------------------------

    def photon_seconds(self, profile: SceneProfile) -> float:
        """Serial seconds to trace one photon of this scene."""
        return profile.work_per_photon() * self.seconds_per_work_unit

    def contention_factor(self, profile: SceneProfile, ranks: int) -> float:
        """Shared-memory slowdown multiplier (>= 1).

        Two workers collide when both are in the tally phase of their
        photon *and* touch the same hot bin tree, so the term scales
        with ``tally_share^2 * concentration`` — which reproduces the
        published ordering: the mirror-heavy Cornell box saturates near
        2x, the Harpsichord room near 3x, and the Computer Lab keeps
        scaling (Figures 5.6-5.8).
        """
        if self.kind != "shared" or ranks <= 1:
            return 1.0
        share = profile.tally_share()
        return 1.0 + self.contention_coeff * (ranks - 1) * (
            profile.concentration * share * share
        )

    def cache_factor(
        self, profile: SceneProfile, ranks: int, photons_so_far: int
    ) -> float:
        """Rate multiplier from per-rank working sets fitting in cache."""
        if self.cache_bonus <= 1.0:
            return 1.0
        total = profile.forest_bytes_at(max(photons_so_far, 1))
        if total <= self.cache_bytes:
            return 1.0  # fits even serially: no relative advantage
        if total / max(ranks, 1) <= self.cache_bytes:
            return self.cache_bonus
        return 1.0

    # -- communication ------------------------------------------------------------

    def batch_comm_seconds(
        self, ranks: int, events_forwarded_per_rank: float
    ) -> float:
        """All-to-all cost for one batch, per rank (distributed only).

        Each rank sends ``ranks - 1`` messages carrying its forwarded
        events split evenly; receives overlap with sends on a full-duplex
        link, so the send side bounds the phase.
        """
        if self.kind != "distributed" or ranks <= 1:
            return 0.0
        messages = ranks - 1
        bytes_per_message = (
            events_forwarded_per_rank * PER_EVENT_BYTES / max(messages, 1)
        )
        per_message = self.latency_s + bytes_per_message / self.bandwidth_bytes_s
        if self.congestion_buffer_bytes != float("inf"):
            overflow = bytes_per_message / self.congestion_buffer_bytes
            per_message += self.latency_s * overflow * overflow
        if ranks > self.copy_hidden_ranks:
            # Buffered asynchronous messaging: an extra copy on both ends
            # that can no longer be overlapped ("adds an extra memory copy
            # and buffer management overhead to each message").
            per_message += 2.0 * bytes_per_message * self.copy_s_per_byte + self.latency_s
        return messages * per_message

    def startup_seconds(self, ranks: int, pilot_photons: int, profile: SceneProfile) -> float:
        """Launch cost before the first batch.

        Distributed runs also pay the redundant pilot-trace of the load
        balancing phase; the shared-memory variant of Figure 5.2 has no
        balancing phase (the forest is shared), so only thread startup
        is charged.
        """
        launch = self.startup_s_per_rank * ranks
        if self.kind != "distributed":
            return launch
        return pilot_photons * self.photon_seconds(profile) + launch
