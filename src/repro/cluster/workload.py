"""Workload calibration: measured per-scene cost statistics.

The discrete-event platform models do not re-trace every photon of a
64-rank run (Python would make that take hours); instead they consume a
:class:`SceneProfile` measured from a short *real* serial run — mean
tallies per photon, octree work per photon, tally concentration across
patches, and forest growth — and extrapolate deterministic batch
timings.  Everything observable about the parallel *algorithm*
(assignment quality, events forwarded, batch counts) still comes from
the real drivers; only wall-clock seconds are modelled.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.bintree import NODE_BYTES, BinForest, SplitPolicy
from ..core.simulator import ACCELS, ENGINES, TraceStats, trace_photon
from ..geometry.scene import Scene
from ..rng import Lcg48

__all__ = ["SceneProfile", "profile_scene"]


@dataclass(frozen=True)
class SceneProfile:
    """Cost statistics of one scene, measured by calibration tracing.

    Attributes:
        name: Scene name.
        defining_polygons: Patch count (Table 5.1 column 1).
        events_per_photon: Mean tallies per emitted photon (1 emission +
            mean bounces).
        nodes_per_photon: Mean octree nodes visited per photon — the
            intersection-work proxy that makes big scenes slower per
            photon (the paper: "as the geometry size increases ... the
            absolute performance is reduced").
        tests_per_photon: Mean patch intersection tests per photon.
        concentration: Herfindahl index of the per-patch tally shares;
            1.0 means all tallies land on one patch (maximum lock
            contention / load imbalance), 1/N means perfectly spread.
        leaves_per_photon: Bin-forest leaf growth rate (drives the
            Fig. 5.4 memory curve and the cache model).
        calibration_photons: Sample size behind these numbers.
    """

    name: str
    defining_polygons: int
    events_per_photon: float
    nodes_per_photon: float
    tests_per_photon: float
    concentration: float
    leaves_per_photon: float
    calibration_photons: int

    def work_per_photon(self) -> float:
        """Abstract work units per photon (node visits + patch tests).

        A patch test is several times the cost of a node visit (plane
        solve + 2x2 parameter inversion vs. slab test).
        """
        return self.nodes_per_photon + 3.0 * self.tests_per_photon

    def tally_share(self, tally_work: float = 40.0) -> float:
        """Fraction of a photon's time spent updating the shared forest.

        DetermineBin + UpdateBinCount + the split test cost roughly
        *tally_work* node-visit equivalents per event.  Lock contention
        in the shared-memory variant can only occur during this fraction
        of the work, which is why large scenes (more intersection work
        per tally) scale better on the Power Onyx — the trend of
        Figures 5.6-5.8.
        """
        tally = self.events_per_photon * tally_work
        return tally / (self.work_per_photon() + tally)

    def forest_bytes_at(self, photons: int) -> float:
        """Estimated bin-forest size after *photons* photons.

        Growth is linear early and sub-linear later (Fig. 5.4); we model
        the envelope with a square-root taper beyond the calibration
        range, which matches the published curve's shape.
        """
        if photons <= self.calibration_photons:
            leaves = 1.0 + self.leaves_per_photon * photons
        else:
            base = 1.0 + self.leaves_per_photon * self.calibration_photons
            extra = photons - self.calibration_photons
            leaves = base + self.leaves_per_photon * (
                (extra * self.calibration_photons) ** 0.5
            )
        # ~2 nodes per leaf in a binary tree.
        return leaves * 2.0 * NODE_BYTES


def profile_scene(
    scene: Scene,
    photons: int = 400,
    seed: int = 2024,
    engine: str = "scalar",
    accel: str = "auto",
    arrays=None,
) -> SceneProfile:
    """Measure a :class:`SceneProfile` by tracing *photons* real photons.

    Args:
        engine: ``"scalar"`` traces the calibration photons through the
            reference loop and reads the octree's traversal counters;
            ``"vector"`` runs the batch engine and reports its own work
            counters (lane-x-node slab tests as ``nodes_per_photon``,
            lane-x-patch plane tests as ``tests_per_photon``) — the
            honest cost profile of the batched intersector.
        accel: Intersection accelerator the vector calibration runs
            under (:data:`repro.core.simulator.ACCELS`).  The profile
            must measure the accelerator users actually run — flat,
            octree, and linear do very different amounts of slab/patch
            work per photon.  Ignored by the scalar engine, which always
            walks the pointer octree.
        arrays: Optional pre-compiled
            :class:`~repro.core.vectorized.SceneArrays` for *scene*
            (e.g. from a :class:`repro.api.SceneProgram`); the vector
            calibration then skips its own scene compile.  Ignored by
            the scalar engine.
    """
    if photons < 10:
        raise ValueError("need at least 10 calibration photons")
    if engine not in ENGINES:
        raise ValueError(f"unknown engine {engine!r}; pick from {ENGINES}")
    if accel not in ACCELS:
        raise ValueError(f"unknown accel {accel!r}; pick from {ACCELS}")
    if engine == "vector":
        return _profile_scene_vector(scene, photons, seed, accel, arrays)
    rng = Lcg48(seed)
    forest = BinForest(SplitPolicy())
    stats = TraceStats()
    scene.octree.stats.reset_traversal_counters()
    patch_tallies: dict[int, int] = {}
    for _ in range(photons):
        events, photon_stats = trace_photon(scene, rng)
        stats.merge(photon_stats)
        for ev in events:
            forest.tally(ev.patch_id, ev.coords, ev.band)
            patch_tallies[ev.patch_id] = patch_tallies.get(ev.patch_id, 0) + 1
        forest.photons_emitted += 1

    total = sum(patch_tallies.values())
    concentration = sum((c / total) ** 2 for c in patch_tallies.values())
    octree_stats = scene.octree.stats
    return SceneProfile(
        name=scene.name,
        defining_polygons=scene.defining_polygon_count,
        events_per_photon=total / photons,
        nodes_per_photon=octree_stats.nodes_visited / photons,
        tests_per_photon=octree_stats.intersection_tests / photons,
        concentration=concentration,
        leaves_per_photon=(forest.leaf_count - forest.tree_count) / photons
        + forest.tree_count / photons,
        calibration_photons=photons,
    )


def _profile_scene_vector(
    scene: Scene, photons: int, seed: int, accel: str, arrays=None
) -> SceneProfile:
    """Vector-engine calibration body of :func:`profile_scene`."""
    from ..core.vectorized import VectorEngine, apply_events

    engine = VectorEngine(scene, arrays=arrays, accel=accel)
    forest = BinForest(SplitPolicy())
    events, _stats = engine.trace_range(seed, 0, photons)
    events = events.sorted_canonical()
    apply_events(forest, events)
    forest.photons_emitted = photons
    patch_tallies: dict[int, int] = {}
    for pid in events.patch.tolist():
        patch_tallies[pid] = patch_tallies.get(pid, 0) + 1

    total = sum(patch_tallies.values())
    concentration = sum((c / total) ** 2 for c in patch_tallies.values())
    return SceneProfile(
        name=scene.name,
        defining_polygons=scene.defining_polygon_count,
        events_per_photon=total / photons,
        nodes_per_photon=engine.box_tests / photons,
        tests_per_photon=engine.patch_tests / photons,
        concentration=concentration,
        leaves_per_photon=(forest.leaf_count - forest.tree_count) / photons
        + forest.tree_count / photons,
        calibration_photons=photons,
    )
