"""The three evaluation platforms of chapter 5, as cost models.

Parameter values are chosen to land in the era-plausible range (MPI
latencies and bandwidths from mid-90s literature) *and* to reproduce the
qualitative features each platform contributes to the figures:

* **SGI Power Onyx** (Figs. 5.6-5.8) — 8-way shared memory; highest
  absolute rate; contention limits small scenes ("for small geometries,
  using more than two processors is a waste").
* **SGI Indy cluster** (Figs. 5.9-5.11) — 8 workstations on 10 Mbit
  Ethernet; slow network shifts the first data point right and costs
  absolute performance, but removing memory contention improves
  scalability; per-node caches give the superlinear 2-processor result
  on the Harpsichord room.
* **IBM SP-2** (Figs. 5.12-5.14) — 64 nodes on a fast switch whose
  asynchronous messaging must be buffered: the copy overhead is hidden
  at 2 nodes (one message per batch overlaps with compute) but not
  beyond, producing the 2 -> 4 processor performance dip, after which
  scaling is good.

Absolute seconds are *era-simulated*, not this container's wall clock;
EXPERIMENTS.md records shape comparisons only.
"""

from __future__ import annotations

from .machine import MachineSpec

__all__ = ["POWER_ONYX", "INDY_CLUSTER", "SP2", "PLATFORMS", "platform_by_name"]

POWER_ONYX = MachineSpec(
    name="SGI Power Onyx",
    kind="shared",
    max_ranks=8,
    # Serial Cornell rate ~6000 photons/s; Fig 5.6's 8-processor plateau
    # is ~4x that, capped by contention (right-axis speedup ~2 for the
    # mirror-heavy box).
    seconds_per_work_unit=1.8e-6,
    contention_coeff=6.4,
    startup_s_per_rank=0.005,
    cache_bytes=4e6,
    cache_bonus=1.0,  # shared L2 — no per-rank cache win
)

INDY_CLUSTER = MachineSpec(
    name="SGI Indy cluster",
    kind="distributed",
    max_ranks=8,
    # Indy R4600s are slower than Onyx R10000s.
    seconds_per_work_unit=3.5e-6,
    latency_s=1.2e-3,  # TCP over 10 Mbit Ethernet
    bandwidth_bytes_s=1.1e6,
    copy_s_per_byte=0.0,  # sockets already copy; nothing extra to expose
    copy_hidden_ranks=8,
    congestion_buffer_bytes=32768.0,  # TCP socket buffers
    startup_s_per_rank=0.35,  # rsh launch + geometry replication
    cache_bytes=4.0e5,  # per-node cache sized so the Harpsichord forest
    cache_bonus=1.5,  # just fits at 2 nodes: the superlinear result
)

SP2 = MachineSpec(
    name="IBM SP-2",
    kind="distributed",
    max_ranks=64,
    seconds_per_work_unit=2.2e-6,
    latency_s=4.0e-5,  # high-performance switch, MPL
    bandwidth_bytes_s=3.4e7,
    # Buffered asynchronous messaging: per-byte buffer management +
    # memory copies that overlap with compute only at 2 nodes.  The
    # magnitude is calibrated to the published 2 -> 4 processor dip
    # (roughly 40-50 % of compute), not to a raw memcpy rate.
    copy_s_per_byte=4.0e-7,
    copy_hidden_ranks=2,
    congestion_buffer_bytes=32768.0,  # MPL buffer pool
    startup_s_per_rank=0.08,
    cache_bytes=2e6,
    cache_bonus=1.0,
)

PLATFORMS = {
    "power-onyx": POWER_ONYX,
    "indy-cluster": INDY_CLUSTER,
    "sp2": SP2,
}


def platform_by_name(name: str) -> MachineSpec:
    """Look up a platform model by registry name.

    Raises:
        KeyError: for unknown names, listing the valid ones.
    """
    try:
        return PLATFORMS[name]
    except KeyError:
        raise KeyError(
            f"unknown platform {name!r}; valid names: {sorted(PLATFORMS)}"
        ) from None
