"""An in-process message-passing substrate with an mpi4py-style API.

The paper chose MPI "for the greatest flexibility and portability"; this
module preserves that interface so the distributed Photon driver reads
like textbook mpi4py code (lowercase object methods: ``send``/``recv``/
``alltoall``/``bcast``/``gather``/``barrier``).  Ranks run as real Python
threads with blocking mailbox queues, so the blocking semantics, deadlock
behaviour, and message ordering of a per-pair FIFO MPI are faithfully
exercised — only the transport is in-process.  Wall-clock performance is
*not* modelled here (Python's GIL would make it meaningless); the
discrete-event cost models in :mod:`repro.cluster` consume the message
accounting this layer records instead.

Substitution note (DESIGN.md): on a machine with real MPI, the driver in
:mod:`repro.parallel.distributed` runs unchanged against ``mpi4py.MPI.
COMM_WORLD`` because only this API subset is used.
"""

from __future__ import annotations

import queue
import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence

__all__ = ["SimComm", "CommStats", "run_parallel", "ANY_SOURCE"]

#: Wildcard source for :meth:`SimComm.recv`, mirroring MPI.ANY_SOURCE.
ANY_SOURCE = -1


@dataclass
class CommStats:
    """Per-rank message accounting consumed by the cluster cost models.

    Attributes:
        messages_sent: Point-to-point sends (collectives decompose into
            their constituent sends).
        payload_items: Total items shipped (for list payloads, the list
            length; 1 otherwise).  The distributed Photon driver ships
            photon tally events, so this counts photons forwarded —
            exactly the quantity Table 5.2 audits.
        barriers: Barrier entries.
    """

    messages_sent: int = 0
    payload_items: int = 0
    barriers: int = 0

    def record_send(self, payload: Any) -> None:
        """Account one outgoing message and its payload size."""
        self.messages_sent += 1
        if isinstance(payload, (list, tuple)):
            self.payload_items += len(payload)
        else:
            self.payload_items += 1


class _World:
    """Shared state of one communicator group."""

    def __init__(self, size: int) -> None:
        self.size = size
        # mailboxes[dest][src] keeps per-pair FIFO ordering like MPI.
        self.mailboxes: list[dict[int, queue.Queue]] = [
            {src: queue.Queue() for src in range(size)} for _ in range(size)
        ]
        self.barrier = threading.Barrier(size)
        self.bcast_slots: list[Any] = [None] * size
        self.gather_slots: list[list[Any]] = [[None] * size for _ in range(size)]


class SimComm:
    """One rank's endpoint of the simulated communicator.

    Construct the full group with :func:`SimComm.world` and hand one
    endpoint to each rank.
    """

    def __init__(self, world: _World, rank: int) -> None:
        self._world = world
        self._rank = rank
        self.stats = CommStats()

    # -- mpi4py-compatible surface --------------------------------------------

    def Get_rank(self) -> int:
        """This endpoint's rank (mpi4py spelling)."""
        return self._rank

    def Get_size(self) -> int:
        """Communicator size (mpi4py spelling)."""
        return self._world.size

    @property
    def rank(self) -> int:
        return self._rank

    @property
    def size(self) -> int:
        return self._world.size

    @classmethod
    def world(cls, size: int) -> list["SimComm"]:
        """Create a communicator group of *size* endpoints."""
        if size < 1:
            raise ValueError("communicator size must be positive")
        w = _World(size)
        return [cls(w, rank) for rank in range(size)]

    # -- point-to-point ----------------------------------------------------------

    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        """Blocking-semantics send (buffers internally, never deadlocks)."""
        if not 0 <= dest < self._world.size:
            raise ValueError(f"invalid destination rank {dest}")
        self.stats.record_send(obj)
        self._world.mailboxes[dest][self._rank].put((tag, obj))

    def recv(self, source: int = ANY_SOURCE, tag: int = 0, timeout: float = 60.0) -> Any:
        """Blocking receive.

        Args:
            source: Sending rank, or :data:`ANY_SOURCE` to poll all.
            tag: Must match the sender's tag (mismatch raises — in this
                controlled setting a tag mismatch is always a bug).
            timeout: Safety net so test deadlocks fail fast instead of
                hanging the suite.

        Raises:
            TimeoutError: when nothing arrives in *timeout* seconds.
            ValueError: on tag mismatch.
        """
        if source == ANY_SOURCE:
            # Round-robin poll of the per-source FIFOs.
            import time

            deadline = time.monotonic() + timeout
            while True:
                for src in range(self._world.size):
                    q = self._world.mailboxes[self._rank][src]
                    try:
                        got_tag, obj = q.get_nowait()
                    except queue.Empty:
                        continue
                    if got_tag != tag:
                        raise ValueError(
                            f"tag mismatch: expected {tag}, got {got_tag}"
                        )
                    return obj
                if time.monotonic() > deadline:
                    raise TimeoutError(f"rank {self._rank}: recv timed out")
                time.sleep(0.0001)
        q = self._world.mailboxes[self._rank][source]
        try:
            got_tag, obj = q.get(timeout=timeout)
        except queue.Empty:
            raise TimeoutError(
                f"rank {self._rank}: recv from {source} timed out"
            ) from None
        if got_tag != tag:
            raise ValueError(f"tag mismatch: expected {tag}, got {got_tag}")
        return obj

    # -- collectives -----------------------------------------------------------------

    def barrier(self) -> None:
        """Block until every rank has entered the barrier."""
        self.stats.barriers += 1
        self._world.barrier.wait()

    def bcast(self, obj: Any, root: int = 0) -> Any:
        """Broadcast from *root*; every rank returns the root's object."""
        if self._rank == root:
            self._world.bcast_slots[root] = obj
            if self._world.size > 1:
                self.stats.messages_sent += self._world.size - 1
        self._world.barrier.wait()
        result = self._world.bcast_slots[root]
        self._world.barrier.wait()  # keep slot stable until all have read
        return result

    def gather(self, obj: Any, root: int = 0) -> Optional[list[Any]]:
        """Gather one object per rank at *root* (None elsewhere)."""
        self._world.gather_slots[root][self._rank] = obj
        if self._rank != root:
            self.stats.record_send(obj)
        self._world.barrier.wait()
        result = None
        if self._rank == root:
            result = list(self._world.gather_slots[root])
        self._world.barrier.wait()
        return result

    def allgather(self, obj: Any) -> list[Any]:
        """Every rank receives the list of all ranks' objects."""
        self._world.gather_slots[0][self._rank] = obj
        self.stats.record_send(obj)
        self._world.barrier.wait()
        result = list(self._world.gather_slots[0])
        self._world.barrier.wait()
        return result

    def alltoall(self, send_list: Sequence[Any]) -> list[Any]:
        """Personalised all-to-all: element *i* of *send_list* goes to rank *i*.

        This is the communication pattern of Figure 5.3 ("an all-to-all
        communication period following each particle tracing phase").
        """
        if len(send_list) != self._world.size:
            raise ValueError(
                f"alltoall needs exactly {self._world.size} elements, "
                f"got {len(send_list)}"
            )
        for dest, payload in enumerate(send_list):
            if dest == self._rank:
                continue
            self.send(payload, dest, tag=7)
        received: list[Any] = [None] * self._world.size
        received[self._rank] = send_list[self._rank]
        for src in range(self._world.size):
            if src == self._rank:
                continue
            received[src] = self.recv(source=src, tag=7)
        return received

    def allreduce_sum(self, value: float) -> float:
        """Sum across ranks (enough for the drivers' needs)."""
        return sum(self.allgather(value))

    def __repr__(self) -> str:
        return f"SimComm(rank={self._rank}, size={self._world.size})"


def run_parallel(
    size: int,
    fn: Callable[..., Any],
    *args: Any,
    timeout: float = 300.0,
) -> list[Any]:
    """Run ``fn(comm, rank, *args)`` on *size* ranks and collect returns.

    Ranks execute as daemon threads; the first exception on any rank is
    re-raised in the caller after all threads finish or the timeout
    expires.

    Returns:
        Per-rank return values, index = rank.
    """
    comms = SimComm.world(size)
    results: list[Any] = [None] * size
    errors: list[tuple[int, BaseException]] = []

    def runner(rank: int) -> None:
        try:
            results[rank] = fn(comms[rank], rank, *args)
        except BaseException as exc:  # noqa: BLE001 — repropagated below
            errors.append((rank, exc))

    threads = [
        threading.Thread(target=runner, args=(rank,), daemon=True)
        for rank in range(size)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout)
        if t.is_alive():
            raise TimeoutError("parallel run did not finish within the timeout")
    if errors:
        rank, exc = errors[0]
        raise RuntimeError(f"rank {rank} failed: {exc!r}") from exc
    return results
