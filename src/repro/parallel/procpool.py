"""Process-parallel vector backend: true multi-core photon tracing.

The shared-memory variant (:mod:`repro.parallel.shared`) runs real
threads, but the GIL serialises Python bytecode, so it demonstrates the
locking protocol rather than speed.  This module is the repo's first
genuinely multi-core path: it shards the photon index range across a
``multiprocessing`` pool of :class:`~repro.core.vectorized.VectorEngine`
workers and reassembles the answer in two phases:

1. **Trace phase** — each worker traces a contiguous shard of photon
   indices (per-photon counter-based substreams make shards independent)
   and returns its tally events as packed NumPy arrays.

2. **Build phase** — patch ids are partitioned round-robin into
   ownership sections; each worker replays *its* patches' events (in
   canonical photon order, so every tree sees exactly the serial tally
   sequence) into a private :class:`BinForest`.  The parent unions the
   disjoint sections with the existing distributed-merge machinery
   (:func:`repro.parallel.distributed.merge_rank_forests`).

Determinism contract
--------------------
Because tallies replay in canonical order and ownership partitions the
tree keys, the merged forest is **identical node-for-node** to a
single-process vector run (and to the scalar substream oracle) for any
worker count, batch size, or merge order — the property the determinism
suite locks down.  Three invariants carry the proof:

* **Substream independence** — photon *i* draws only from its private
  counter-based substream, so shard boundaries cannot change any draw.
* **Canonical event order** — every shard sorts its events by
  ``(photon, bounce)`` before shipping, and shards cover contiguous
  ascending index ranges, so concatenation replays the exact serial
  tally sequence.
* **Merge-order invariance** — ownership sections are disjoint by
  construction (``patch_id % workers``), so the union is a permutation-
  free merge; trees are then re-keyed into first-tally order to make
  the serialised answer byte-stable.

Workers inherit the parent's ``config.accel`` intersection mode; since
every accelerator is bit-exact (see :mod:`repro.core.vectorized`), the
choice affects throughput only.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..core.bintree import BinForest, SplitPolicy
from ..core.photon import NUM_BANDS
from ..core.simulator import SimulationConfig, SimulationResult, TraceStats
from ..core.vectorized import EventBatch, VectorEngine, apply_events
from ..geometry.scene import Scene
from .distributed import merge_rank_forests, rank_share

__all__ = [
    "run_procpool",
    "trace_events_parallel",
    "build_forest_parallel",
    "partition_patches",
]


def _trace_shard(
    scene: Scene,
    fluorescence,
    batch_size: int,
    accel: str,
    seed: int,
    start: int,
    count: int,
) -> tuple[tuple, TraceStats]:
    """Pool target: trace photons ``start .. start+count`` of the budget."""
    engine = VectorEngine(
        scene, fluorescence=fluorescence, batch_size=batch_size, accel=accel
    )
    events, stats = engine.trace_range(seed, start, count)
    events = events.sorted_canonical()
    return (
        (events.gidx, events.seq, events.patch, events.s, events.t,
         events.theta, events.r2, events.band),
        stats,
    )


@dataclass
class _Section:
    """One worker's owned slice of the forest, shaped for the merger."""

    forest: BinForest


def _build_section(policy: SplitPolicy, arrays: tuple) -> _Section:
    """Pool target: replay one ownership section's events into a forest."""
    forest = BinForest(policy)
    apply_events(forest, EventBatch(*arrays))
    return _Section(forest)


def partition_patches(patch_ids: np.ndarray, workers: int) -> np.ndarray:
    """Round-robin patch -> worker ownership (stable for any worker count)."""
    return patch_ids % workers


def trace_events_parallel(
    pool, scene: Scene, config: SimulationConfig
) -> tuple[EventBatch, TraceStats]:
    """Phase 1: fan the photon range out over *pool*, gather sorted events."""
    workers = config.workers
    starts = []
    offset = 0
    for w in range(workers):
        share = rank_share(config.n_photons, w, workers)
        starts.append((offset, share))
        offset += share
    jobs = [
        (scene, config.fluorescence, config.batch_size, config.accel,
         config.seed, start, count)
        for start, count in starts
        if count > 0
    ]
    results = pool.starmap(_trace_shard, jobs)
    stats = TraceStats()
    blocks = []
    for arrays, shard_stats in results:
        stats.merge(shard_stats)
        blocks.append(EventBatch(*arrays))
    # Each shard arrives canonically sorted, shards cover contiguous
    # ascending index ranges, and starmap preserves job order — so the
    # concatenation is already globally canonical; re-sorting here would
    # be serial parent-side overhead on every run.
    return EventBatch.concat(blocks), stats


def build_forest_parallel(
    pool, events: EventBatch, policy: SplitPolicy, workers: int
) -> BinForest:
    """Phase 2: ownership-sharded forest build + distributed-style merge."""
    owner = partition_patches(events.patch, workers)
    jobs = []
    for w in range(workers):
        rows = np.nonzero(owner == w)[0]
        if rows.size == 0:
            continue
        sub = events.take(rows)
        jobs.append((policy, (sub.gidx, sub.seq, sub.patch, sub.s, sub.t,
                              sub.theta, sub.r2, sub.band)))
    sections: Sequence[_Section] = pool.starmap(_build_section, jobs) if jobs else []
    merged = merge_rank_forests(sections, policy)
    # Present trees in first-tally order so the merged forest serialises
    # byte-for-byte like a single-process vector run.
    unique, first_index = np.unique(events.patch, return_index=True)
    order = unique[np.argsort(first_index)]
    merged.trees = {int(pid): merged.trees[int(pid)] for pid in order}
    return merged


def run_procpool(
    scene: Scene, config: SimulationConfig, pool=None
) -> SimulationResult:
    """Run *config* on a process pool; result matches the serial engines.

    Args:
        scene: Scene to trace (shipped to workers by pickle).
        config: Simulation parameters; ``config.workers`` sizes the pool.
        pool: Optional pre-built pool-like object exposing ``starmap``
            (used by tests to inject an in-process executor).
    """
    if config.n_photons == 0:
        return SimulationResult(
            BinForest(config.policy), TraceStats(), config, scene.name
        )
    if pool is not None:
        events, stats = trace_events_parallel(pool, scene, config)
        forest = build_forest_parallel(pool, events, config.policy, config.workers)
    else:
        import multiprocessing as mp

        with mp.get_context().Pool(processes=config.workers) as real_pool:
            events, stats = trace_events_parallel(real_pool, scene, config)
            forest = build_forest_parallel(
                real_pool, events, config.policy, config.workers
            )
    forest.photons_emitted = config.n_photons
    counts = events.emission_band_counts()
    for b in range(NUM_BANDS):
        forest.band_emitted[b] = counts[b]
    return SimulationResult(forest, stats, config, scene.name)
