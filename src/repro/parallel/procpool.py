"""Process-parallel vector backend: true multi-core photon tracing.

The shared-memory variant (:mod:`repro.parallel.shared`) runs real
threads, but the GIL serialises Python bytecode, so it demonstrates the
locking protocol rather than speed.  This module is the repo's first
genuinely multi-core path: it shards the photon index range across a
``multiprocessing`` pool of :class:`~repro.core.vectorized.VectorEngine`
workers and reassembles the answer in two phases:

1. **Trace phase** — each worker traces a contiguous shard of photon
   indices (per-photon counter-based substreams make shards independent)
   and writes its tally events into a preallocated shared-memory result
   block, returning only a tiny descriptor
   (:class:`repro.parallel.resultplane.ShardResult`); with the result
   plane off, the events ride the pickle as packed NumPy arrays.

2. **Build phase** — patch ids are partitioned round-robin into
   ownership sections; each worker replays *its* patches' events (in
   canonical photon order, so every tree sees exactly the serial tally
   sequence) into a private :class:`BinForest`.  With the result plane
   on, workers re-read their owned rows straight from the shard blocks
   (:func:`repro.parallel.resultplane.take_owned`) instead of receiving
   them by pickle.  The parent unions the disjoint sections with the
   existing distributed-merge machinery
   (:func:`repro.parallel.distributed.merge_rank_forests`).

Scene transport: the shared-memory plane
----------------------------------------
:class:`PhotonPool` owns a persistent pool whose initializer builds each
worker's engine **once**.  On large scenes the parent publishes the
compiled :class:`~repro.core.vectorized.SceneArrays` (flat octree
included) into a shared-memory plane (:mod:`repro.parallel.shmplane`)
and workers attach zero-copy — no per-worker scene pickle, no per-worker
octree re-compilation, one copy of the acceleration structure in RAM no
matter the worker count.  ``SimulationConfig.share_plane`` selects the
transport: ``"on"``, ``"off"`` (pickle the scene, the original
behaviour), or ``"auto"`` (plane when ``shared_memory`` exists and the
scene is large enough to repay publishing).  Both transports carry the
exact same bytes, so answers are identical either way.

Result transport: the shared-memory result plane
------------------------------------------------
``SimulationConfig.result_plane`` selects the *outbound* transport the
same way: ``"on"``/``"off"``/``"auto"`` (plane whenever the platform has
shared memory — result bytes scale with the photon budget, so there is
no scene-size threshold).  :class:`PhotonPool` allocates the per-shard
blocks lazily at the first trace, recycles them verbatim across warm
requests, regrows them (old segment unlinked first) when a bigger
budget arrives, and unlinks them at close — the same no-leak contract
the scene plane honours.  With the plane live, a request's events cross
the process boundary as O(workers) descriptors in both phases; see
:mod:`repro.parallel.resultplane` for the block layout and the
overflow/fallback rules.

Determinism contract
--------------------
Because tallies replay in canonical order and ownership partitions the
tree keys, the merged forest is **identical node-for-node** to a
single-process vector run (and to the scalar substream oracle) for any
worker count, batch size, merge order, or scene transport — the property
the determinism suite locks down.  Three invariants carry the proof:

* **Substream independence** — photon *i* draws only from its private
  counter-based substream, so shard boundaries cannot change any draw.
* **Canonical event order** — every shard sorts its events by
  ``(photon, bounce)`` before shipping, and shards cover contiguous
  ascending index ranges, so concatenation replays the exact serial
  tally sequence.
* **Merge-order invariance** — ownership sections are disjoint by
  construction (``patch_id % workers``), so the union is a permutation-
  free merge; trees are then re-keyed into first-tally order to make
  the serialised answer byte-stable.

Workers inherit the parent's ``config.accel`` intersection mode; since
every accelerator is bit-exact (see :mod:`repro.core.vectorized`), the
choice affects throughput only.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..core.bintree import BinForest, SplitPolicy
from ..core.photon import NUM_BANDS
from ..core.simulator import SimulationConfig, SimulationResult, TraceStats
from ..core.vectorized import (
    EVENT_FIELDS,
    PRUNE_PATCH_THRESHOLD,
    EventBatch,
    SceneArrays,
    VectorEngine,
    apply_events,
)
from ..geometry.scene import Scene
from . import resultplane
from .distributed import merge_rank_forests, rank_share
from .resultplane import (
    ResultPlane,
    ShardResult,
    block_capacity,
    gather_shards,
    pack_shard,
    resolve_result_plane,
)

__all__ = [
    "PhotonPool",
    "run_procpool",
    "trace_events_parallel",
    "build_forest_parallel",
    "partition_patches",
    "resolve_share_plane",
    "resolve_result_plane",
    "PLANE_MIN_PATCHES",
]

#: Under ``share_plane="auto"``, scenes below this patch count stay on
#: the pickle transport: publishing a plane costs one segment round-trip
#: that a small scene (tiny arrays, cheap octree compile) cannot repay.
#: Same scale as the accelerator auto-threshold, and for the same
#: reason — fixed setup cost vs. scene size.
PLANE_MIN_PATCHES = PRUNE_PATCH_THRESHOLD


def _shard_starts(n_photons: int, workers: int) -> list[tuple[int, int]]:
    """Contiguous ``(start, count)`` photon shards, one per worker.

    The single prefix pass over :func:`rank_share` — every caller that
    needs shard offsets uses this instead of re-summing per rank.
    """
    starts = []
    offset = 0
    for w in range(workers):
        share = rank_share(n_photons, w, workers)
        starts.append((offset, share))
        offset += share
    return starts


def _event_columns(events: EventBatch) -> tuple:
    """EventBatch -> plain array tuple (the pickle wire format).

    Column order is :data:`repro.core.vectorized.EVENT_FIELDS` — the
    same layout the result blocks use, so the two transports carry
    identical bytes.
    """
    fields = events.export_fields()
    return tuple(fields[name] for name, _ in EVENT_FIELDS)


def _trace_shard(
    scene: Scene,
    fluorescence,
    batch_size: int,
    accel: str,
    seed: int,
    start: int,
    count: int,
) -> ShardResult:
    """Self-contained pool target: trace photons ``start .. start+count``.

    Builds a throwaway engine from the pickled *scene* — the legacy
    transport, kept for injected in-process pools (tests) and as the
    semantics reference for the persistent-pool path below.  Always
    returns an inline-payload :class:`ShardResult` (nothing forked, so
    there is no plane to write into).
    """
    engine = VectorEngine(
        scene, fluorescence=fluorescence, batch_size=batch_size, accel=accel
    )
    events, stats = engine.trace_range(seed, start, count)
    return pack_shard(events.sorted_canonical(), stats, None, -1)


#: Per-process engine of a :class:`PhotonPool` worker, built once by the
#: pool initializer (attached to the plane, or from the pickled scene).
_POOL_ENGINE: Optional[VectorEngine] = None


def _init_pool_worker(
    handle,
    scene: Optional[Scene],
    fluorescence,
    batch_size: int,
    accel: str,
    report_queue=None,
) -> None:
    """Pool initializer: construct this worker's engine exactly once.

    With a plane *handle* the engine's arrays are zero-copy views into
    the shared segment (*scene* is ``None`` — nothing big was pickled);
    otherwise the worker compiles its own arrays from the pickled scene.
    When *report_queue* is given, the worker reports ``(pid, transport)``
    exactly once after its engine is ready — the parent's startup
    barrier and per-worker transport census.
    """
    global _POOL_ENGINE
    if handle is not None:
        from .shmplane import attach

        _POOL_ENGINE = VectorEngine(
            arrays=attach(handle),
            fluorescence=fluorescence,
            batch_size=batch_size,
            accel=accel,
        )
    else:
        _POOL_ENGINE = VectorEngine(
            scene, fluorescence=fluorescence, batch_size=batch_size, accel=accel
        )
    if report_queue is not None:
        import os

        transport = "plane" if _POOL_ENGINE.arrays.scene is None else "pickle"
        report_queue.put((os.getpid(), transport))


def _trace_shard_pooled(
    seed: int, start: int, count: int, result_handle, slot: int
) -> ShardResult:
    """Pool target for persistent workers: trace on the initializer's engine.

    With a *result_handle* the canonical events land in result block
    *slot* and only the descriptor returns; without one they ride the
    pickle (the legacy return transport).
    """
    events, stats = _POOL_ENGINE.trace_range(seed, start, count)
    return pack_shard(events.sorted_canonical(), stats, result_handle, slot)


@dataclass
class _Section:
    """One worker's owned slice of the forest, shaped for the merger."""

    forest: BinForest


def _build_section(policy: SplitPolicy, arrays: tuple) -> _Section:
    """Pool target: replay one ownership section's events into a forest."""
    forest = BinForest(policy)
    apply_events(forest, EventBatch(*arrays))
    return _Section(forest)


def _build_section_pooled(
    policy: SplitPolicy,
    result_handle,
    counts: tuple,
    worker_id: int,
    workers: int,
) -> _Section:
    """Pool target: build one ownership section from the result blocks.

    The zero-pickle build phase: the job carries only the block handle
    plus per-slot live counts; the worker re-reads its owned rows from
    the blocks the trace phase just filled
    (:func:`repro.parallel.resultplane.take_owned`).
    """
    forest = BinForest(policy)
    apply_events(
        forest, resultplane.take_owned(result_handle, counts, worker_id, workers)
    )
    return _Section(forest)


def partition_patches(patch_ids: np.ndarray, workers: int) -> np.ndarray:
    """Round-robin patch -> worker ownership (stable for any worker count)."""
    return patch_ids % workers


def trace_events_parallel(
    pool, scene: Scene, config: SimulationConfig
) -> tuple[EventBatch, TraceStats]:
    """Phase 1 on an injected pool: ship the scene with every job.

    The legacy entry point kept for pool-shaped in-process executors;
    :class:`PhotonPool` runs the same phase against persistent workers
    without re-shipping the scene (and, with the result plane, without
    shipping the events back either).
    """
    jobs = [
        (scene, config.fluorescence, config.batch_size, config.accel,
         config.seed, start, count)
        for start, count in _shard_starts(config.n_photons, config.workers)
        if count > 0
    ]
    return gather_shards(pool.starmap(_trace_shard, jobs), None)


def _reorder_first_tally(merged: BinForest, events: EventBatch) -> BinForest:
    """Present trees in first-tally order so the merged forest serialises
    byte-for-byte like a single-process vector run."""
    unique, first_index = np.unique(events.patch, return_index=True)
    order = unique[np.argsort(first_index)]
    merged.trees = {int(pid): merged.trees[int(pid)] for pid in order}
    return merged


def build_forest_parallel(
    pool, events: EventBatch, policy: SplitPolicy, workers: int
) -> BinForest:
    """Phase 2: ownership-sharded forest build + distributed-style merge.

    The pickle-transport build, used by injected pools and as the
    fallback when any trace shard returned an inline payload;
    :meth:`PhotonPool.run` prefers the block-reading build
    (:func:`_build_section_pooled`) when the whole trace phase went
    through the result plane.
    """
    owner = partition_patches(events.patch, workers)
    jobs = []
    for w in range(workers):
        rows = np.nonzero(owner == w)[0]
        if rows.size == 0:
            continue
        jobs.append((policy, _event_columns(events.take(rows))))
    sections: Sequence[_Section] = pool.starmap(_build_section, jobs) if jobs else []
    merged = merge_rank_forests(sections, policy)
    return _reorder_first_tally(merged, events)


def resolve_share_plane(mode: str, scene: Scene) -> bool:
    """Decide whether a run publishes the shared-memory plane.

    ``"on"`` demands it (raising when the platform cannot), ``"off"``
    never uses it, and ``"auto"`` picks it exactly when the platform
    supports it and the scene clears :data:`PLANE_MIN_PATCHES`.
    """
    from .shmplane import plane_available

    if mode == "off":
        return False
    if mode == "on":
        if not plane_available():
            raise RuntimeError(
                "share_plane='on' but multiprocessing.shared_memory is "
                "unavailable on this platform; use 'off' or 'auto'"
            )
        return True
    if mode != "auto":
        raise ValueError(f"unknown share_plane mode {mode!r}")
    return plane_available() and len(scene.patches) >= PLANE_MIN_PATCHES


class PhotonPool:
    """A persistent worker pool with an optional shared-memory scene plane.

    Publishing, worker startup, and segment cleanup happen once per pool
    rather than once per run, so repeated :meth:`run` calls (parameter
    sweeps, benchmarks, services) pay only tracing time.  Always use the
    context manager (or call :meth:`close` in a ``finally``): it closes
    **and unlinks** the plane segment even when a worker raises, which is
    the no-leak contract the lifecycle tests enforce.

    Example::

        with PhotonPool(scene, config) as pool:
            result = pool.run()

    Args:
        scene: Scene the pool serves; one plane is published for it.
        config: Pool sizing (``workers``) and engine parameters
            (``fluorescence``, ``batch_size``, ``accel``) come from
            here, as does the default ``share_plane`` mode.
        share_plane: Optional override of ``config.share_plane``.
        result_plane: Optional override of ``config.result_plane`` (the
            outbound event transport; see
            :mod:`repro.parallel.resultplane`).
        arrays: Optional pre-compiled :class:`SceneArrays` for *scene*.
            When this pool itself publishes a plane it publishes these
            instead of recompiling the scene — for direct pool users
            that already hold compiled arrays.  (The session API does
            not publish through the pool at all: it acquires a
            registry-owned plane and passes *plane_handle* instead.)
        plane_handle: Optional handle of an **externally owned** plane
            (typically from
            :func:`repro.parallel.shmplane.plane_registry`).  The pool
            attaches its workers to that segment, never publishes, and
            never unlinks it on :meth:`close` — the owner (registry /
            session) controls the segment lifetime.
    """

    def __init__(
        self,
        scene: Scene,
        config: SimulationConfig,
        share_plane: Optional[str] = None,
        *,
        result_plane: Optional[str] = None,
        arrays: Optional[SceneArrays] = None,
        plane_handle=None,
    ) -> None:
        self.scene = scene
        self.config = config
        self.share_plane = (
            share_plane if share_plane is not None else config.share_plane
        )
        self.result_plane_mode = (
            result_plane if result_plane is not None else config.result_plane
        )
        self.arrays = arrays
        self.plane_handle = plane_handle
        self.plane = None
        self._pool = None
        self._init_reports = None
        self._transports: Optional[list[str]] = None
        #: Transport actually chosen at :meth:`start` ("plane"/"pickle").
        self.transport = "pickle"
        #: The per-shard result blocks, allocated lazily by the first
        #: trace and recycled across warm requests (None until then, or
        #: when the result transport resolved to pickle).
        self.result_blocks: Optional[ResultPlane] = None
        self._use_result_plane = False
        #: The previous trace call's :class:`ShardResult` descriptors in
        #: job order, with inline payloads stripped after the gather
        #: (:meth:`run` reuses the slot/count fields for the build
        #: phase).  ``last_result_wire_bytes`` records what the full
        #: results — payloads included — cost to cross the process
        #: boundary; the transport benchmarks read it.
        self.last_shard_results: list[ShardResult] = []
        self.last_result_wire_bytes = 0
        #: Warm traces that recycled the existing result blocks instead
        #: of allocating a segment — the amortized serving tier's
        #: top-up ranges land here, so the counter is how benchmarks
        #: show repeated small ranges stay allocation-free.
        self.result_block_reuses = 0

    def start(self) -> "PhotonPool":
        """Publish the plane (if selected) and fork the workers."""
        if self._pool is not None:
            return self
        # Resolve the outbound transport up front so result_plane="on"
        # fails loudly at start, not at the first trace.
        self._use_result_plane = resolve_result_plane(self.result_plane_mode)
        handle = None
        scene_arg: Optional[Scene] = self.scene
        if self.plane_handle is not None:
            # Externally owned plane (session / registry): attach only.
            handle = self.plane_handle
            scene_arg = None
            self.transport = "plane"
        elif resolve_share_plane(self.share_plane, self.scene):
            from . import shmplane

            try:
                payload = (
                    self.arrays if self.arrays is not None
                    else SceneArrays(self.scene)
                )
                self.plane = shmplane.publish(payload)
            except OSError:
                if self.share_plane == "on":
                    raise
                self.plane = None  # auto: fall back to pickling
            if self.plane is not None:
                handle = self.plane.handle
                scene_arg = None
                self.transport = "plane"
        import multiprocessing as mp

        config = self.config
        ctx = mp.get_context()
        try:
            self._init_reports = ctx.Queue()
            self._pool = ctx.Pool(
                processes=config.workers,
                initializer=_init_pool_worker,
                initargs=(handle, scene_arg, config.fluorescence,
                          config.batch_size, config.accel, self._init_reports),
            )
        except BaseException:
            # The no-leak contract covers a failed fork too: a published
            # segment must not outlive the pool that never started.
            if self.plane is not None:
                self.plane.close()
                self.plane.unlink()
                self.plane = None
            raise
        return self

    def run(self, config: Optional[SimulationConfig] = None) -> SimulationResult:
        """Run one photon budget; the result matches the serial engines.

        *config* defaults to the pool's own; passing a different one
        (other budget/seed/policy) reuses the warm workers.  Engine
        parameters and the shard/ownership count always come from the
        pool's construction config — the pool has exactly that many
        workers, with engines built once at :meth:`start`.  (Answers do
        not depend on the count either way; that is the determinism
        contract.)  A *config* whose ``fluorescence`` differs is
        rejected: it changes the physics, and the frozen worker engines
        could not honour it — silently mislabelling the result is the
        one failure mode worse than an error.
        """
        if self._pool is None:
            self.start()
        workers = self.config.workers
        config = config if config is not None else self.config
        if config.fluorescence != self.config.fluorescence:
            raise ValueError(
                "run() config changes fluorescence, but worker engines are "
                "built once at pool start; create a new PhotonPool for a "
                "different fluorescence spec"
            )
        if config.n_photons == 0:
            return SimulationResult(
                BinForest(config.policy), TraceStats(), config, self.scene.name
            )
        events, stats = self.trace_range(config.seed, 0, config.n_photons)
        results = self.last_shard_results
        if (
            self.result_blocks is not None
            and results
            and all(r.slot >= 0 for r in results)
        ):
            # Zero-pickle build: workers re-read their owned rows from
            # the shard blocks still holding this trace's events.
            forest = self._build_forest_from_blocks(
                events, results, config.policy, workers
            )
        else:
            forest = build_forest_parallel(
                self._pool, events, config.policy, workers
            )
        return _finish_result(forest, events, stats, config, self.scene.name)

    def _build_forest_from_blocks(
        self,
        events: EventBatch,
        results: Sequence[ShardResult],
        policy: SplitPolicy,
        workers: int,
    ) -> BinForest:
        """Phase 2 over the result plane: O(1) job arguments per section.

        Each non-empty ownership section gets one job carrying only the
        block handle, the per-slot live counts, and its owner id; the
        worker re-reads and filters the blocks itself
        (:func:`_build_section_pooled`).  Empty sections are skipped
        parent-side, exactly like the pickle build.
        """
        counts = [0] * self.result_blocks.blocks
        for r in results:
            counts[r.slot] = r.count
        present = np.unique(events.patch % workers)
        jobs = [
            (policy, self.result_blocks.handle, tuple(counts), int(w), workers)
            for w in present
        ]
        sections: Sequence[_Section] = (
            self._pool.starmap(_build_section_pooled, jobs) if jobs else []
        )
        merged = merge_rank_forests(sections, policy)
        return _reorder_first_tally(merged, events)

    def _ensure_result_blocks(self, max_share: int) -> Optional[ResultPlane]:
        """The result blocks for a trace whose largest shard is *max_share*.

        Allocates on first use, recycles when the existing blocks fit,
        regrows (unlinking the old segment first) when the budget grew.
        An allocation failure under ``"auto"`` warns loudly and drops to
        the pickle transport for the pool's remaining life; ``"on"``
        propagates the error.
        """
        if not self._use_result_plane:
            return None
        # Scenes that know their events-per-photon (loader metadata or
        # generator estimate) get blocks sized for *this* scene; scenes
        # without a hint keep the blanket worst-case factor.  getattr:
        # scenes unpickled from pre-hint answer pipelines lack the attr.
        capacity = block_capacity(
            max_share, getattr(self.scene, "events_per_photon_hint", None)
        )
        blocks = self.config.workers
        if self.result_blocks is not None:
            if self.result_blocks.fits(blocks, capacity):
                self.result_block_reuses += 1
                return self.result_blocks
            old, self.result_blocks = self.result_blocks, None
            old.close()
            old.unlink()
        try:
            self.result_blocks = ResultPlane(blocks, capacity)
        except OSError as exc:
            if self.result_plane_mode == "on":
                raise
            import warnings

            warnings.warn(
                f"could not allocate shared-memory result blocks ({exc}); "
                "falling back to the pickle return transport for this pool",
                resultplane.ResultPlaneWarning,
                stacklevel=3,
            )
            self._use_result_plane = False
        return self.result_blocks

    def trace_range(
        self, seed: int, start: int, count: int
    ) -> tuple[EventBatch, TraceStats]:
        """Phase 1 only: trace photons ``start .. start+count`` on the
        warm workers, returning globally canonical events plus counters.

        The streaming building block behind
        :meth:`repro.api.RenderSession.simulate_stream`: the caller
        chunks the photon budget, tallies each returned block itself
        (:func:`repro.core.vectorized.tally_block`), and gets a forest
        byte-identical to :meth:`run` — contiguous ascending shards on
        per-photon substreams make the concatenation canonical exactly
        as in the one-shot path.

        With the result plane live, each yield's events come back as
        block descriptors (streamed serving stays free of per-batch
        event pickling); the blocks are recycled by the next call, after
        the canonical merge has copied the events out.
        """
        if self._pool is None:
            self.start()
        shards = [
            (offset, share)
            for offset, share in _shard_starts(count, self.config.workers)
            if share > 0
        ]
        blocks = (
            self._ensure_result_blocks(max(share for _, share in shards))
            if shards
            else None
        )
        handle = blocks.handle if blocks is not None else None
        jobs = [
            (seed, start + offset, share, handle, slot)
            for slot, (offset, share) in enumerate(shards)
        ]
        results = self._pool.starmap(_trace_shard_pooled, jobs)
        gathered = gather_shards(results, blocks)
        self.last_result_wire_bytes = resultplane.wire_bytes(results)
        # The gather copied every event out; drop inline payloads so a
        # pickle-path request cannot pin O(events) arrays in the parent
        # until the next trace (descriptors alone drive the build phase).
        for r in results:
            r.payload = None
        self.last_shard_results = results
        return gathered

    def worker_transports(self) -> list[str]:
        """Every worker's transport, reported once from its initializer.

        Blocks until all ``workers`` initializers have finished (each
        reports exactly once), so this doubles as the startup barrier
        the benchmarks time against.  The census is cached — the report
        queue only ever holds one entry per worker.
        """
        if self._pool is None:
            return []
        if self._transports is None:
            reports = [
                self._init_reports.get(timeout=60.0)
                for _ in range(self.config.workers)
            ]
            assert len({pid for pid, _ in reports}) == len(reports)
            self._transports = [transport for _, transport in sorted(reports)]
        return self._transports

    def close(self, terminate: bool = False) -> None:
        """Tear down workers, then close and unlink both planes (idempotent).

        The result blocks release with the scene plane — also on the
        worker-exception path (the context manager routes here), which
        is the crash half of the no-leak contract the lifecycle tests
        cover for the return transport too.
        """
        if self._pool is not None:
            if terminate:
                self._pool.terminate()
            else:
                self._pool.close()
            self._pool.join()
            self._pool = None
        if self._init_reports is not None:
            self._init_reports.close()
            self._init_reports = None
            self._transports = None
        if self.plane is not None:
            self.plane.close()
            self.plane.unlink()
            self.plane = None
        self.last_shard_results = []
        if self.result_blocks is not None:
            self.result_blocks.close()
            self.result_blocks.unlink()
            self.result_blocks = None
        # A restart after close() re-decides the transports from scratch
        # (an "auto" re-publish may fall back where the first one won).
        self.transport = "pickle"
        self._use_result_plane = False

    def __enter__(self) -> "PhotonPool":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        # A raising worker leaves queued tasks behind; terminate instead
        # of draining them, but release the segment either way.
        self.close(terminate=exc_type is not None)


def book_emissions(forest: BinForest, events: EventBatch, n_photons: int) -> None:
    """Set a merged forest's emission counters from the event record.

    The one home of post-merge emission accounting, shared by every
    sharded-reduction driver (the process pool and the shared-memory
    vector path), so the booking cannot drift between them.
    """
    forest.photons_emitted = n_photons
    counts = events.emission_band_counts()
    for b in range(NUM_BANDS):
        forest.band_emitted[b] = counts[b]


def _finish_result(
    forest: BinForest,
    events: EventBatch,
    stats: TraceStats,
    config: SimulationConfig,
    scene_name: str,
) -> SimulationResult:
    """Book emissions on the merged forest and wrap the result."""
    book_emissions(forest, events, config.n_photons)
    return SimulationResult(forest, stats, config, scene_name)


def run_procpool(
    scene: Scene, config: SimulationConfig, pool=None
) -> SimulationResult:
    """Run *config* on a process pool; result matches the serial engines.

    Args:
        scene: Scene to trace (shared-memory plane or pickle, per
            ``config.share_plane``).
        config: Simulation parameters; ``config.workers`` sizes the pool.
        pool: Optional pre-built pool-like object exposing ``starmap``
            (used by tests to inject an in-process executor; always the
            pickle transport, since nothing forked).
    """
    if config.n_photons == 0:
        return SimulationResult(
            BinForest(config.policy), TraceStats(), config, scene.name
        )
    if pool is not None:
        events, stats = trace_events_parallel(pool, scene, config)
        forest = build_forest_parallel(pool, events, config.policy, config.workers)
        return _finish_result(forest, events, stats, config, scene.name)
    with PhotonPool(scene, config) as photon_pool:
        return photon_pool.run()
