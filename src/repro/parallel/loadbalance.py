"""Load balancing for distributed Photon (Table 5.2).

"Initially all processors are assigned ownership of the entire geometry.
During this load balancing phase, k photons are generated and traced
through the scene ... each processor goes through the photons in the
same order, thus producing the same bin forest.  At this point, we are
able to use the photon counts for each bin to determine an appropriate
load balance."

The ownable items are therefore *sections of the bin forest* — bins, not
whole patches (a single luminaire's tree would otherwise pin every
emission tally to one processor).  We build an :class:`OwnershipMap`
from the pilot forest: its leaves are the candidate units, and any unit
whose pilot count exceeds the per-rank target is refined by uniform
midpoint splits (statistically justified: the 3-sigma test already
judged those leaves uniform, so halving the region halves the expected
load).  Packing units onto processors is bin packing (NP-complete, as
the paper notes); the greedy Best-Fit heuristic — "a bin is added to the
processor with the smallest photon count" — is implemented alongside the
naive contiguous assignment it beats in Table 5.2.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Mapping, Optional, Sequence

from ..core.binning import BinCoords, BinNode, NUM_AXES
from ..core.bintree import BinForest, SplitPolicy
from ..core.simulator import trace_photon
from ..geometry.scene import Scene
from ..rng import Lcg48

__all__ = [
    "OwnershipMap",
    "UnitInfo",
    "Assignment",
    "pilot_forest",
    "pilot_counts",
    "assign_units",
    "load_imbalance",
    "DEFAULT_PILOT_PHOTONS",
]

#: Pilot photons for the balancing phase.  The paper notes k "does not
#: appear to depend on the size of geometry"; a couple thousand photons
#: give stable per-bin frequencies for all three test scenes.
DEFAULT_PILOT_PHOTONS = 2000

#: Forced-refinement axis order for oversized units: surface position
#: first (spatial sections of a patch), then the angular coordinates.
_REFINE_AXES = (0, 1, 3, 2)


def pilot_forest(
    scene: Scene, k: int = DEFAULT_PILOT_PHOTONS, seed: int = 99, policy: Optional[SplitPolicy] = None
) -> BinForest:
    """Trace *k* pilot photons into a fresh forest (patch-keyed).

    Every rank calls this with identical arguments and — because the
    stream and traversal are deterministic — derives the identical
    forest, exactly the redundant-but-cheap scheme of the paper ("the
    period of redundant work lasts less than a second").
    """
    if k < 1:
        raise ValueError("pilot photon count must be positive")
    rng = Lcg48(seed)
    forest = BinForest(policy or SplitPolicy())
    for _ in range(k):
        events, _ = trace_photon(scene, rng)
        for event in events:
            forest.tally(event.patch_id, event.coords, event.band)
        forest.photons_emitted += 1
        forest.band_emitted[events[0].band] += 1
    return forest


def pilot_counts(scene: Scene, k: int = DEFAULT_PILOT_PHOTONS, seed: int = 99) -> dict[int, int]:
    """Per-patch pilot tallies (diagnostics; the map below is per-bin)."""
    forest = pilot_forest(scene, k, seed)
    counts = {pid: 0 for pid in range(len(scene.patches))}
    counts.update({pid: t.root.total for pid, t in forest.trees.items()})
    return counts


@dataclass(frozen=True)
class UnitInfo:
    """One ownable section of the bin forest.

    Attributes:
        unit_id: Dense index; the distributed forest keys trees by it.
        patch_id: Patch whose domain this unit covers a sub-region of.
        lo / hi: 4-D region bounds (s, t, theta, r^2).
        estimated_count: Pilot tallies expected in the region (halved per
            forced split).
    """

    unit_id: int
    patch_id: int
    lo: tuple[float, float, float, float]
    hi: tuple[float, float, float, float]
    estimated_count: float


class _UnitNode:
    """Region-tree node used for unit lookup (lean: no tallies)."""

    __slots__ = ("lo", "hi", "axis", "low", "high", "unit_id")

    def __init__(self, lo, hi) -> None:
        self.lo = lo
        self.hi = hi
        self.axis: Optional[int] = None
        self.low: Optional["_UnitNode"] = None
        self.high: Optional["_UnitNode"] = None
        self.unit_id: int = -1


class OwnershipMap:
    """Deterministic (patch, coords) -> unit mapping shared by all ranks.

    Build with :meth:`from_pilot`.  The map copies the pilot forest's
    tree structure and force-refines any leaf whose count exceeds
    ``total / (n_ranks * granularity)`` so Best-Fit always has enough
    pieces to balance with.
    """

    def __init__(self) -> None:
        self.units: list[UnitInfo] = []
        self._roots: dict[int, _UnitNode] = {}

    # -- construction ------------------------------------------------------------

    @classmethod
    def from_pilot(
        cls,
        scene: Scene,
        pilot: BinForest,
        n_ranks: int,
        *,
        granularity: int = 8,
        max_extra_depth: int = 16,
    ) -> "OwnershipMap":
        """Derive the unit map from a pilot forest.

        Args:
            scene: Provides the full patch id range (unlit patches still
                need owners for late tallies).
            pilot: The identical-on-all-ranks pilot forest.
            n_ranks: Processor count the assignment will target.
            granularity: Target units per rank; higher gives finer
                balance at more lookup depth.
            max_extra_depth: Cap on forced splits below a pilot leaf.
        """
        if n_ranks < 1:
            raise ValueError("n_ranks must be positive")
        if granularity < 1:
            raise ValueError("granularity must be positive")
        total = max(pilot.total_tallies, 1)
        target = max(total / (n_ranks * granularity), 1.0)
        mapping = cls()
        for pid in range(len(scene.patches)):
            tree = pilot.trees.get(pid)
            if tree is None:
                root = _UnitNode((0.0, 0.0, 0.0, 0.0), (1.0, 1.0, 2 * 3.141592653589793, 1.0))
                mapping._finish_leaf(root, pid, 0.0)
                mapping._roots[pid] = root
                continue
            root = mapping._copy(tree.root, pid, target, max_extra_depth)
            mapping._roots[pid] = root
        return mapping

    def _copy(self, node: BinNode, pid: int, target: float, extra: int) -> _UnitNode:
        unit = _UnitNode(node.lo, node.hi)
        if not node.is_leaf:
            unit.axis = node.split_axis
            unit.low = self._copy(node.low_child, pid, target, extra)  # type: ignore[arg-type]
            unit.high = self._copy(node.high_child, pid, target, extra)  # type: ignore[arg-type]
            return unit
        self._refine(unit, pid, float(node.total), target, extra, 0)
        return unit

    def _refine(
        self, unit: _UnitNode, pid: int, count: float, target: float, extra: int, depth: int
    ) -> None:
        if count <= target or depth >= extra:
            self._finish_leaf(unit, pid, count)
            return
        axis = _REFINE_AXES[depth % NUM_AXES]
        mid = 0.5 * (unit.lo[axis] + unit.hi[axis])
        lo_hi = tuple(mid if i == axis else unit.hi[i] for i in range(NUM_AXES))
        hi_lo = tuple(mid if i == axis else unit.lo[i] for i in range(NUM_AXES))
        unit.axis = axis
        unit.low = _UnitNode(unit.lo, lo_hi)
        unit.high = _UnitNode(hi_lo, unit.hi)
        self._refine(unit.low, pid, count / 2.0, target, extra, depth + 1)
        self._refine(unit.high, pid, count / 2.0, target, extra, depth + 1)

    def _finish_leaf(self, unit: _UnitNode, pid: int, count: float) -> None:
        unit.unit_id = len(self.units)
        self.units.append(UnitInfo(unit.unit_id, pid, unit.lo, unit.hi, count))

    # -- queries --------------------------------------------------------------------

    @property
    def n_units(self) -> int:
        return len(self.units)

    def unit_of(self, patch_id: int, coords: BinCoords) -> int:
        """The unit id owning *coords* on *patch_id*."""
        node = self._roots[patch_id]
        while node.axis is not None:
            mid = 0.5 * (node.lo[node.axis] + node.hi[node.axis])
            node = node.low if coords.axis_value(node.axis) < mid else node.high  # type: ignore[assignment]
        return node.unit_id

    def unit_region(self, unit_id: int) -> tuple[tuple, tuple]:
        """(lo, hi) 4-D bounds of a unit's region."""
        info = self.units[unit_id]
        return info.lo, info.hi

    def patch_of(self, unit_id: int) -> int:
        """The patch a unit belongs to."""
        return self.units[unit_id].patch_id


@dataclass(frozen=True)
class Assignment:
    """A unit -> rank ownership map with its predicted load.

    Attributes:
        owner: unit_id -> rank (dense list).
        predicted_load: Per-rank pilot-count totals under this map.
        method: 'naive' or 'best-fit' (report labelling).
    """

    owner: tuple[int, ...]
    predicted_load: tuple[float, ...]
    method: str

    def rank_of_unit(self, unit_id: int) -> int:
        """Owning rank of a unit."""
        return self.owner[unit_id]

    def units_of(self, rank: int) -> list[int]:
        """All unit ids owned by *rank*."""
        return [u for u, r in enumerate(self.owner) if r == rank]


def assign_units(mapping: OwnershipMap, n_ranks: int, method: str) -> Assignment:
    """Pack ownership units onto ranks.

    Args:
        method: 'best-fit' — greedy: each unit (in decreasing pilot-count
            order) goes to the lightest rank; or 'naive' — contiguous
            unit-id blocks, blind to load.

    Ties break deterministically so every rank computes the identical
    assignment without communication.
    """
    if n_ranks < 1:
        raise ValueError("need at least one rank")
    n = mapping.n_units
    owner = [0] * n
    load = [0.0] * n_ranks
    if method == "naive":
        block = (n + n_ranks - 1) // n_ranks
        for unit_id in range(n):
            rank = min(unit_id // block, n_ranks - 1)
            owner[unit_id] = rank
            load[rank] += mapping.units[unit_id].estimated_count
    elif method == "best-fit":
        heap: list[tuple[float, int]] = [(0.0, r) for r in range(n_ranks)]
        heapq.heapify(heap)
        ordered = sorted(
            range(n),
            key=lambda u: (-mapping.units[u].estimated_count, u),
        )
        for unit_id in ordered:
            current, rank = heapq.heappop(heap)
            owner[unit_id] = rank
            current += mapping.units[unit_id].estimated_count
            load[rank] = current
            heapq.heappush(heap, (current, rank))
    else:
        raise ValueError(f"unknown method {method!r}")
    return Assignment(tuple(owner), tuple(load), method)


def load_imbalance(loads: Sequence[float]) -> float:
    """max/mean load ratio; 1.0 is perfect balance.

    The Table 5.2 naive column shows ~1.5 (47.9k vs a 33.6k mean); the
    Best-Fit column is ~1.02.
    """
    if not loads:
        raise ValueError("loads must be non-empty")
    mean = sum(loads) / len(loads)
    if mean == 0:
        return 1.0
    return max(loads) / mean
