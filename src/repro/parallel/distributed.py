"""Distributed-memory Photon: the algorithm of Figure 5.3.

Each rank traces its share of photons against the replicated geometry.
The *bin forest* is partitioned by ownership units (sections of the
pilot forest, see :mod:`repro.parallel.loadbalance`): every tally event
whose unit is owned by another rank is queued, and queues are exchanged
in an all-to-all after each batch ("photons are queued and batched for
transmission ... an all-to-all communication period following each
particle tracing phase").  Receivers replay the events into their own
trees — DetermineBin runs again on the receiving side, exactly as the
pseudo-code shows, so bin *structure* never crosses the wire, only
(unit, coordinates, band) records.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Literal, Optional, Sequence

from ..core.binning import BinCoords
from ..core.bintree import BinForest, SplitPolicy
from ..core.simulator import TraceStats, trace_photon
from ..geometry.scene import Scene
from ..rng import Lcg48
from .loadbalance import (
    Assignment,
    DEFAULT_PILOT_PHOTONS,
    OwnershipMap,
    assign_units,
    pilot_forest,
)
from .mpi import SimComm, run_parallel

__all__ = [
    "DistributedConfig",
    "RankResult",
    "DistributedResult",
    "distributed_worker",
    "run_distributed",
    "merge_rank_forests",
    "rank_share",
    "serial_replay",
    "build_balance",
]

#: Compact wire format for one tally event:
#: (unit_id, s, t, theta, r_squared, band).
WireEvent = tuple[int, float, float, float, float, int]


@dataclass(frozen=True)
class DistributedConfig:
    """Parameters of a distributed run.

    Attributes:
        n_photons: Total photons across all ranks.
        seed: Base seed; rank streams are leapfrog substreams of it.
        policy: Bin split policy (identical on every rank).
        batch_size: Photons each rank traces between all-to-all phases.
        balance: 'best-fit' (the paper's scheme) or 'naive'.
        pilot_photons: Photons traced redundantly during load balancing.
        granularity: Target ownership units per rank (see OwnershipMap).
    """

    n_photons: int
    seed: int = 0x1234ABCD330E
    policy: SplitPolicy = field(default_factory=SplitPolicy)
    batch_size: int = 500
    balance: Literal["best-fit", "naive"] = "best-fit"
    pilot_photons: int = DEFAULT_PILOT_PHOTONS
    granularity: int = 8

    def __post_init__(self) -> None:
        if self.n_photons < 0:
            raise ValueError("n_photons must be non-negative")
        if self.batch_size < 1:
            raise ValueError("batch_size must be positive")
        if self.balance not in ("best-fit", "naive"):
            raise ValueError(f"unknown balance scheme {self.balance!r}")


def rank_share(n_photons: int, rank: int, size: int) -> int:
    """Photons rank *rank* emits out of *n_photons* (first ranks get extras)."""
    base, extra = divmod(n_photons, size)
    return base + (1 if rank < extra else 0)


def build_balance(
    scene: Scene, config: DistributedConfig, n_ranks: int
) -> tuple[OwnershipMap, Assignment]:
    """The redundant load-balancing phase, identical on every rank.

    Returns the ownership map and the unit assignment; both are pure
    functions of (scene, config, n_ranks), so no communication is needed
    to agree on them.
    """
    pilot = pilot_forest(
        scene, config.pilot_photons, seed=config.seed ^ 0x5BD1E995, policy=config.policy
    )
    mapping = OwnershipMap.from_pilot(
        scene, pilot, n_ranks, granularity=config.granularity
    )
    assignment = assign_units(mapping, n_ranks, config.balance)
    return mapping, assignment


@dataclass
class RankResult:
    """What one rank produced.

    Attributes:
        rank: The rank index.
        forest: This rank's owned section of the bin forest (unit-keyed).
        stats: Tracing counters for the photons this rank emitted.
        photons_processed: Tally events *applied* by this rank (local +
            received) — the quantity Table 5.2 reports per processor.
        events_forwarded: Tally events shipped to other ranks.
        photons_emitted: Photons this rank generated.
        batches: All-to-all rounds executed.
        assignment_method: 'best-fit' or 'naive'.
        owned_units: Unit ids this rank owned.
    """

    rank: int
    forest: BinForest
    stats: TraceStats
    photons_processed: int
    events_forwarded: int
    photons_emitted: int
    batches: int
    assignment_method: str
    owned_units: list[int]


def distributed_worker(
    comm: SimComm, rank: int, scene: Scene, config: DistributedConfig
) -> RankResult:
    """The per-rank body of Figure 5.3 (runs under any mpi4py-like comm)."""
    size = comm.Get_size()

    # ---- Load-balancing phase (redundant, deterministic, comm-free).
    mapping, assignment = build_balance(scene, config, size)
    owned = set(assignment.units_of(rank))

    # ---- Main simulation: trace, queue, exchange, apply.
    rng = Lcg48.leapfrog(config.seed, rank, size)
    forest = BinForest(config.policy)
    stats = TraceStats()
    my_share = rank_share(config.n_photons, rank, size)
    # Every rank must join the same number of all-to-all rounds.
    max_share = rank_share(config.n_photons, 0, size)
    rounds = (max_share + config.batch_size - 1) // config.batch_size

    def apply_local(unit_id: int, coords: BinCoords, band: int) -> None:
        lo, hi = mapping.unit_region(unit_id)
        forest.tree(unit_id, lo, hi).tally(coords, band)
        forest.total_tallies += 1
        forest.band_tallies[band] += 1

    processed = 0
    forwarded = 0
    emitted = 0
    for _ in range(rounds):
        todo = min(config.batch_size, my_share - emitted)
        queues: list[list[WireEvent]] = [[] for _ in range(size)]
        for _ in range(max(todo, 0)):
            events, photon_stats = trace_photon(scene, rng)
            stats.merge(photon_stats)
            emitted += 1
            forest.photons_emitted += 1
            forest.band_emitted[events[0].band] += 1
            for ev in events:
                unit_id = mapping.unit_of(ev.patch_id, ev.coords)
                dest = assignment.rank_of_unit(unit_id)
                if dest == rank:
                    apply_local(unit_id, ev.coords, ev.band)
                    processed += 1
                else:
                    queues[dest].append(
                        (
                            unit_id,
                            ev.coords.s,
                            ev.coords.t,
                            ev.coords.theta,
                            ev.coords.r_squared,
                            ev.band,
                        )
                    )
                    forwarded += 1
        received = comm.alltoall(queues)
        for src in range(size):
            if src == rank:
                continue
            for unit_id, s, t, theta, r_squared, band in received[src]:
                if unit_id not in owned:
                    raise ValueError(
                        f"rank {rank} received event for unit {unit_id} it "
                        "does not own — sender assignment disagrees"
                    )
                apply_local(unit_id, BinCoords(s, t, theta, r_squared), band)
                processed += 1

    comm.barrier()
    return RankResult(
        rank=rank,
        forest=forest,
        stats=stats,
        photons_processed=processed,
        events_forwarded=forwarded,
        photons_emitted=emitted,
        batches=rounds,
        assignment_method=assignment.method,
        owned_units=sorted(owned),
    )


@dataclass
class DistributedResult:
    """A completed distributed run: merged answer plus per-rank records."""

    forest: BinForest
    ranks: list[RankResult]
    mapping: OwnershipMap

    @property
    def total_photons(self) -> int:
        return sum(r.photons_emitted for r in self.ranks)

    def processed_per_rank(self) -> list[int]:
        """Table 5.2's column: photons processed by each processor."""
        return [r.photons_processed for r in self.ranks]

    def stats(self) -> TraceStats:
        """Merged tracing counters across all ranks."""
        merged = TraceStats()
        for r in self.ranks:
            merged.merge(r.stats)
        return merged


def merge_rank_forests(
    results: Sequence[RankResult], policy: SplitPolicy
) -> BinForest:
    """Union the rank-owned forest sections into one answer forest.

    Ownership partitions unit ids, so the union is disjoint; counters
    are summed.  Raises on overlapping ownership (protocol violation).
    """
    merged = BinForest(policy)
    for result in results:
        for key, tree in result.forest.trees.items():
            if key in merged.trees:
                raise ValueError(f"unit {key} owned by more than one rank")
            merged.trees[key] = tree
        merged.total_tallies += result.forest.total_tallies
        for b in range(3):
            merged.band_tallies[b] += result.forest.band_tallies[b]
            merged.band_emitted[b] += result.forest.band_emitted[b]
        merged.photons_emitted += result.forest.photons_emitted
    return merged


def run_distributed(
    scene: Scene, config: DistributedConfig, n_ranks: int
) -> DistributedResult:
    """Run the full distributed simulation on *n_ranks* in-process ranks."""
    results = run_parallel(n_ranks, distributed_worker, scene, config)
    forest = merge_rank_forests(results, config.policy)
    mapping, _ = build_balance(scene, config, n_ranks)
    return DistributedResult(forest=forest, ranks=list(results), mapping=mapping)


def serial_replay(
    scene: Scene, config: DistributedConfig, n_ranks: int
) -> BinForest:
    """Replay the distributed schedule serially (test oracle).

    Traces every rank's photon stream in rank order, applying all events
    to one unit-keyed forest.  Per-unit *totals* must match a real
    distributed run exactly (tallying is order-independent in totals);
    with ``n_ranks == 1`` the tally order is also identical, so the full
    forest matches node-for-node.
    """
    mapping, _ = build_balance(scene, config, n_ranks)
    forest = BinForest(config.policy)
    for rank in range(n_ranks):
        rng = Lcg48.leapfrog(config.seed, rank, n_ranks)
        for _ in range(rank_share(config.n_photons, rank, n_ranks)):
            events, _ = trace_photon(scene, rng)
            forest.photons_emitted += 1
            forest.band_emitted[events[0].band] += 1
            for ev in events:
                unit_id = mapping.unit_of(ev.patch_id, ev.coords)
                lo, hi = mapping.unit_region(unit_id)
                forest.tree(unit_id, lo, hi).tally(ev.coords, ev.band)
                forest.total_tallies += 1
                forest.band_tallies[ev.band] += 1
    return forest
