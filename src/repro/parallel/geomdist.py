"""Geometry distribution with photon migration (chapter 6 future work).

"Currently, the octree representation of the geometry is replicated on
all nodes.  This could limit the size of the input geometry.
Distribution of the geometry would allow computation of a global
illumination solution for very complex scenes. ... In a distributed
environment, a photon is then only passed to those processors that are
responsible for the space the photon is traveling through.  The photons
can then be queued and sent in a batch to the appropriate processors."

This module implements that design:

* space is partitioned into axis-aligned **regions** (a regular grid
  over the scene bounds — the top cells of an octree decomposition);
  each rank owns one or more regions and holds **only the patches
  overlapping its regions** (geometry is distributed, not replicated);
* photons are traced *region-locally*: a hit is only accepted while it
  lies inside the owning region, exactly the property the paper credits
  the octree with ("when an intersection is detected, it is the closest
  intersection and further testing is not needed");
* a photon that exits a region without hitting anything migrates — it is
  queued and shipped to the next region's owner in the round's batch;
* every photon carries its own RNG state, so its path is identical no
  matter which ranks trace its segments — which is what lets the test
  suite assert exact tally equality with a serial reference.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..core.binning import BinCoords
from ..core.bintree import BinForest, SplitPolicy
from ..core.generation import emit_photon
from ..core.photon import Photon
from ..core.reflection import reflect
from ..core.simulator import ACCELS, MAX_BOUNCES
from ..geometry.aabb import AABB
from ..geometry.octree import Octree
from ..geometry.ray import Ray
from ..geometry.scene import Scene
from ..geometry.vec import Vec3
from ..rng import Lcg48
from .mpi import SimComm, run_parallel

__all__ = [
    "RegionGrid",
    "GeomDistConfig",
    "GeomRankResult",
    "GeomDistResult",
    "run_geometry_distributed",
    "serial_reference_tallies",
]

#: Nudge applied when handing a photon across a region boundary so the
#: receiving rank's region test sees it strictly inside.
_BOUNDARY_EPS = 1e-9


class RegionGrid:
    """A regular grid of regions over the scene bounds.

    Args:
        bounds: Scene bounding box.
        divisions: Cells per axis (total regions = divisions^3).

    Regions are assigned to ranks round-robin by linear cell index.
    """

    def __init__(self, bounds: AABB, divisions: int) -> None:
        if divisions < 1:
            raise ValueError("divisions must be >= 1")
        self.bounds = bounds
        self.divisions = divisions
        self.lo = bounds.lo
        ext = bounds.extent()
        self.cell = Vec3(
            max(ext.x, 1e-12) / divisions,
            max(ext.y, 1e-12) / divisions,
            max(ext.z, 1e-12) / divisions,
        )

    @property
    def n_regions(self) -> int:
        return self.divisions**3

    def region_of_point(self, p: Vec3) -> int:
        """Linear region index of a point (clamped to the grid)."""
        d = self.divisions

        def clamp_idx(v: float, lo: float, cell: float) -> int:
            i = int((v - lo) / cell)
            return min(max(i, 0), d - 1)

        ix = clamp_idx(p.x, self.lo.x, self.cell.x)
        iy = clamp_idx(p.y, self.lo.y, self.cell.y)
        iz = clamp_idx(p.z, self.lo.z, self.cell.z)
        return (iz * d + iy) * d + ix

    def region_box(self, index: int) -> AABB:
        """Axis-aligned bounds of region *index*."""
        d = self.divisions
        ix = index % d
        iy = (index // d) % d
        iz = index // (d * d)
        lo = Vec3(
            self.lo.x + ix * self.cell.x,
            self.lo.y + iy * self.cell.y,
            self.lo.z + iz * self.cell.z,
        )
        hi = Vec3(lo.x + self.cell.x, lo.y + self.cell.y, lo.z + self.cell.z)
        return AABB(lo, hi)

    def owner_of_region(self, index: int, n_ranks: int) -> int:
        """Round-robin rank assignment of a region."""
        return index % n_ranks

    def owner_of_point(self, p: Vec3, n_ranks: int) -> int:
        """Owning rank of the region containing *p*."""
        return self.owner_of_region(self.region_of_point(p), n_ranks)

    def owners_of_points(self, px, py, pz, n_ranks: int):
        """Vectorized :meth:`owner_of_point` over coordinate arrays.

        Lives next to the scalar form so the clamp/index arithmetic has
        exactly one home.  ``int()`` truncates toward zero, which
        :func:`numpy.trunc` mirrors exactly, so the batched index matches
        the scalar one for every point.
        """
        import numpy as np

        d = self.divisions

        def clamp_idx(v, lo, cell):
            i = np.trunc((v - lo) / cell).astype(np.int64)
            return np.minimum(np.maximum(i, 0), d - 1)

        ix = clamp_idx(px, self.lo.x, self.cell.x)
        iy = clamp_idx(py, self.lo.y, self.cell.y)
        iz = clamp_idx(pz, self.lo.z, self.cell.z)
        return ((iz * d + iy) * d + ix) % n_ranks


@dataclass(frozen=True)
class GeomDistConfig:
    """Parameters for a geometry-distributed run.

    Attributes:
        n_photons: Total photon budget.
        seed: Base seed; photon *i* owns substream ``fork_jump(i * 2^20)``
            of it, making paths rank-independent.
        divisions: Region grid resolution per axis.
        policy: Bin split policy.
        max_rounds: Safety valve on migration rounds.
        accel: Intersection accelerator for the batched emission
            enumeration's :class:`~repro.core.vectorized.VectorEngine`
            (:data:`repro.core.simulator.ACCELS`).  Emission itself
            never intersects, but engine construction compiles the
            selected accelerator's structures — honouring the user's
            choice keeps per-rank setup cost consistent with the rest of
            the run.  Answers are identical in every mode.
    """

    n_photons: int
    seed: int = 0x1234ABCD330E
    divisions: int = 2
    policy: SplitPolicy = field(default_factory=SplitPolicy)
    max_rounds: int = 10_000
    accel: str = "auto"

    def __post_init__(self) -> None:
        if self.n_photons < 0:
            raise ValueError("n_photons must be non-negative")
        if self.divisions < 1:
            raise ValueError("divisions must be >= 1")
        if self.accel not in ACCELS:
            raise ValueError(f"unknown accel {self.accel!r}; pick from {ACCELS}")


#: Wire form of an in-flight photon:
#: (x, y, z, dx, dy, dz, band, bounces, rng_state).
WirePhoton = tuple[float, float, float, float, float, float, int, int, int]


def _photon_stream(seed: int, index: int) -> Lcg48:
    """The private RNG stream of photon *index*.

    Same convention as :func:`repro.core.vectorized.photon_substream`
    (a ``(index + 1) << 20`` jump), which is what lets the emission
    enumeration below run through the batched engine bit-for-bit.
    """
    return Lcg48(seed).fork_jump((index + 1) << 20)


def _pack(photon: Photon, rng: Lcg48) -> WirePhoton:
    return (
        photon.position.x,
        photon.position.y,
        photon.position.z,
        photon.direction.x,
        photon.direction.y,
        photon.direction.z,
        photon.band,
        photon.bounces,
        rng.state,
    )


def _unpack(wire: WirePhoton) -> tuple[Photon, Lcg48]:
    x, y, z, dx, dy, dz, band, bounces, state = wire
    return (
        Photon(Vec3(x, y, z), Vec3(dx, dy, dz), band, bounces),
        Lcg48(state),
    )


@dataclass
class GeomRankResult:
    """Per-rank outcome of a geometry-distributed run."""

    rank: int
    forest: BinForest
    local_patches: int
    photons_emitted: int
    migrations_received: int
    tallies_applied: int
    rounds: int


@dataclass
class GeomDistResult:
    """Merged outcome plus distribution metrics."""

    ranks: list[GeomRankResult]
    total_patches: int

    def tallies_per_patch(self) -> dict[int, int]:
        """Merged per-patch tallies across all ranks."""
        merged: dict[int, int] = {}
        for r in self.ranks:
            for key, tree in r.forest.trees.items():
                merged[key] = merged.get(key, 0) + tree.root.total
        return merged

    def replication_factor(self) -> float:
        """Mean copies of each patch across ranks (1.0 = perfectly
        distributed; == n_ranks would be full replication)."""
        return sum(r.local_patches for r in self.ranks) / self.total_patches

    def max_rank_patches(self) -> int:
        """Geometry memory high-water mark (the quantity distribution
        is meant to shrink)."""
        return max(r.local_patches for r in self.ranks)

    def total_migrations(self) -> int:
        """Photon hand-offs shipped between ranks."""
        return sum(r.migrations_received for r in self.ranks)


def _geomdist_worker(
    comm: SimComm, rank: int, scene: Scene, config: GeomDistConfig
) -> GeomRankResult:
    size = comm.Get_size()
    grid = RegionGrid(scene.bounds(), config.divisions)

    # ---- Distributed geometry: hold only patches overlapping my regions.
    my_regions = [
        r for r in range(grid.n_regions) if grid.owner_of_region(r, size) == rank
    ]
    my_boxes = [grid.region_box(r) for r in my_regions]
    local_patches = [
        p
        for p in scene.patches
        if any(box.overlaps(p.bounds()) for box in my_boxes)
    ]
    local_octree = Octree(local_patches) if local_patches else None

    def region_exit_t(ray: Ray, box: AABB) -> float:
        span = box.intersect_ray(ray)
        if span is None:
            return 0.0
        return span[1]

    def trace_segment(photon: Photon, rng: Lcg48):
        """Trace within my regions; returns ('tally', events...) pieces,
        plus either a migrated wire photon or None (terminated)."""
        events: list[tuple[int, BinCoords, int]] = []
        while True:
            if photon.bounces >= MAX_BOUNCES:
                return events, None
            here = grid.region_of_point(photon.position)
            if grid.owner_of_region(here, size) != rank:
                return events, _pack(photon, rng)  # migrate
            box = grid.region_box(here)
            ray = Ray(photon.position, photon.direction, normalized=True)
            t_exit = region_exit_t(ray, box)
            hit = local_octree.intersect(ray, t_exit + _BOUNDARY_EPS) if local_octree else None
            if hit is None:
                # Leave this region; either migrate or escape the scene.
                exit_point = ray.at(t_exit + _BOUNDARY_EPS)
                if not grid.bounds.contains_point(exit_point):
                    return events, None  # escaped the scene
                photon.position = exit_point
                continue  # next loop decides locality of the new region
            result = reflect(photon, hit, rng)
            if result is None:
                return events, None  # absorbed
            events.append(
                (
                    hit.patch.patch_id,
                    BinCoords(hit.s, hit.t, result.theta, result.r_squared),
                    photon.band,
                )
            )
            photon.advance_to(hit.point, result.direction)

    # ---- Emit my share, tallying emissions locally by patch owner rule:
    # bins live with the rank that owns the *emission point's* region.
    forest = BinForest(config.policy)
    tallies = 0
    emitted = 0
    migrations = 0

    def apply_events(events) -> None:
        nonlocal tallies
        for patch_id, coords, band in events:
            forest.tally(patch_id, coords, band)
            tallies += 1

    # Every rank enumerates all photons but only emits those whose
    # emission point lands in its regions (deterministic: the emission
    # draw comes from the photon's private stream).  The enumeration is
    # the redundant all-photon part of the algorithm, so it runs through
    # the batched vector emitter — bit-exact with emit_photon on each
    # photon's private stream, including the post-emission RNG state the
    # wire format carries.
    from ..core.vectorized import VectorEngine

    emitter = VectorEngine(scene, accel=config.accel)
    inbox: list[WirePhoton] = []
    pending_events: list = []
    emit_batch_size = 8192
    for batch_start in range(0, config.n_photons, emit_batch_size):
        batch_count = min(emit_batch_size, config.n_photons - batch_start)
        em = emitter.emit_range(config.seed, batch_start, batch_count)
        owners = grid.owners_of_points(em.px, em.py, em.pz, size)
        for j in (owners == rank).nonzero()[0].tolist():
            emitted += 1
            pending_events.append(
                (
                    int(em.patch[j]),
                    BinCoords(em.s[j], em.t[j], em.theta[j], em.r2[j]),
                    int(em.band[j]),
                )
            )
            inbox.append(
                (
                    em.px[j], em.py[j], em.pz[j],
                    em.dx[j], em.dy[j], em.dz[j],
                    int(em.band[j]), 0, int(em.states[j]),
                )
            )
    apply_events(pending_events)

    # ---- Migration rounds: trace local, exchange, repeat until quiet.
    rounds = 0
    while True:
        rounds += 1
        if rounds > config.max_rounds:
            raise RuntimeError("migration did not converge; raise max_rounds")
        outboxes: list[list[WirePhoton]] = [[] for _ in range(size)]
        for wire in inbox:
            photon, rng = _unpack(wire)
            events, migrated = trace_segment(photon, rng)
            apply_events(events)
            if migrated is not None:
                dest = grid.owner_of_point(
                    Vec3(migrated[0], migrated[1], migrated[2]), size
                )
                outboxes[dest].append(migrated)
                migrations += 1
        received = comm.alltoall(outboxes)
        inbox = [w for src in range(size) for w in received[src]]
        in_flight = comm.allreduce_sum(float(len(inbox)))
        if in_flight == 0.0:
            break

    comm.barrier()
    return GeomRankResult(
        rank=rank,
        forest=forest,
        local_patches=len(local_patches),
        photons_emitted=emitted,
        migrations_received=migrations,
        tallies_applied=tallies,
        rounds=rounds,
    )


def run_geometry_distributed(
    scene: Scene, config: GeomDistConfig, n_ranks: int
) -> GeomDistResult:
    """Run the geometry-distributed simulation on *n_ranks* ranks."""
    results = run_parallel(n_ranks, _geomdist_worker, scene, config)
    return GeomDistResult(ranks=list(results), total_patches=len(scene.patches))


def serial_reference_tallies(scene: Scene, config: GeomDistConfig) -> dict[int, int]:
    """Per-patch tallies of the same photons traced serially.

    Each photon uses its private stream, so the distributed run must
    reproduce these counts *exactly* — the correctness anchor for the
    migration protocol.
    """
    counts: dict[int, int] = {}
    for i in range(config.n_photons):
        rng = _photon_stream(config.seed, i)
        record = emit_photon(scene, rng)
        counts[record.patch_id] = counts.get(record.patch_id, 0) + 1
        photon = record.photon
        while True:
            if photon.bounces >= MAX_BOUNCES:
                break
            hit = scene.intersect(Ray(photon.position, photon.direction, normalized=True))
            if hit is None:
                break
            result = reflect(photon, hit, rng)
            if result is None:
                break
            counts[hit.patch.patch_id] = counts.get(hit.patch.patch_id, 0) + 1
            photon.advance_to(hit.point, result.direction)
    return counts
