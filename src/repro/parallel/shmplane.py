"""Zero-copy shared-memory scene plane for process-pool workers.

The paper's shared-memory variant (Figure 5.2) assumes every worker
reads *one* scene and *one* bin forest in place.  The process pool
(:mod:`repro.parallel.procpool`) gets true multi-core execution, but its
original transport shipped the scene by pickle and re-compiled the flat
octree inside every worker — exactly the per-worker duplication the
shared-memory design exists to avoid, and the dominant startup cost on
large scenes (the computer-lab flat compile walks ~28k pointer nodes).

This module publishes the compiled scene — every array of
:class:`~repro.core.vectorized.SceneArrays`, including the eleven
:class:`~repro.geometry.flatoctree.FlatOctree` arrays and the packed
per-leaf candidate lists — into **one named**
``multiprocessing.shared_memory`` **segment**:

* :func:`publish` lays the arrays into the segment back to back
  (16-byte aligned) and returns a :class:`ScenePlane` that owns the
  segment's lifecycle.
* :attr:`ScenePlane.handle` is a :class:`PlaneHandle`: the segment name
  plus ``(field, dtype, shape, offset)`` rows and the one non-array
  scalar (``total_power``).  It pickles in a few kilobytes regardless of
  scene size — that is all that ever crosses the process boundary.
* :func:`attach` (worker side) maps the segment and rebuilds a
  :class:`SceneArrays` whose attributes are **read-only views** into the
  shared buffer — no copies, no octree compilation, bit-identical
  tracing (the plane holds the exact bytes the publisher computed).

Lifecycle contract
------------------
The publisher is the segment's owner: it must :meth:`ScenePlane.close`
*and* :meth:`ScenePlane.unlink` when done (the context manager does
both, including on exceptions).  Workers only ever attach; their
mappings are cached per segment for the life of the process and torn
down by the OS at process exit — a worker must **not** unlink.  After
``unlink`` the name is gone: late attaches raise ``FileNotFoundError``
and the handle is dead.  :func:`leaked_segments` scans for segments the
publisher failed to release (tests assert it stays empty).

When ``multiprocessing.shared_memory`` is unavailable (exotic platforms,
sandboxed /dev/shm) the pool falls back to pickling the scene — see
:func:`repro.parallel.procpool.resolve_share_plane`.
"""

from __future__ import annotations

import os
import secrets
import threading
from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from ..core.vectorized import SceneArrays

try:  # pragma: no cover — import succeeds on every supported platform
    from multiprocessing import shared_memory as _shm
except ImportError:  # pragma: no cover
    _shm = None  # type: ignore[assignment]

__all__ = [
    "PLANE_SEGMENT_PREFIX",
    "PlaneHandle",
    "PlaneRegistry",
    "ScenePlane",
    "plane_available",
    "plane_registry",
    "publish",
    "attach",
    "detach_all",
    "leaked_segments",
]

#: Every plane segment name starts with this, so leak checks (tests, CI)
#: can scan ``/dev/shm`` without false positives from other software.
PLANE_SEGMENT_PREFIX = "photon-plane-"

#: Field offsets are rounded up to this many bytes so every dtype in the
#: plane (float64/int64/int32/bool) lands aligned.
_ALIGN = 16


def plane_available() -> bool:
    """True when this platform can create shared-memory segments."""
    return _shm is not None


def _aligned(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


@dataclass(frozen=True)
class PlaneHandle:
    """Everything a worker needs to reattach a published plane.

    Pickles as names + shapes + dtypes + offsets (a few KB), never the
    array payload: the payload lives in the named segment.

    Attributes:
        segment: Shared-memory segment name.
        fields: ``(name, dtype_str, shape, offset)`` per array, in the
            exact layout :func:`publish` wrote.
        total_power: The one scalar :class:`SceneArrays` attribute.
        nbytes: Total segment payload size (diagnostics only).
    """

    segment: str
    fields: tuple[tuple[str, str, tuple[int, ...], int], ...]
    total_power: float
    nbytes: int


class ScenePlane:
    """Owner side of a published plane: the segment plus its handle.

    Use as a context manager for exception-safe release::

        with publish(SceneArrays(scene)) as plane:
            pool = Pool(initializer=..., initargs=(plane.handle, ...))
            ...
        # segment closed AND unlinked here, error or not
    """

    def __init__(self, shm, handle: PlaneHandle) -> None:
        self._shm = shm
        self.handle = handle
        self._closed = False
        self._unlinked = False

    @property
    def name(self) -> str:
        return self.handle.segment

    def close(self) -> None:
        """Unmap the owner's view (idempotent); the segment survives."""
        if not self._closed:
            self._shm.close()
            self._closed = True

    def unlink(self) -> None:
        """Remove the segment name (idempotent); late attaches now fail."""
        if not self._unlinked:
            self._shm.unlink()
            self._unlinked = True

    def __enter__(self) -> "ScenePlane":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
        self.unlink()


def publish(arrays: SceneArrays) -> ScenePlane:
    """Copy *arrays* into a fresh named segment; returns its owner.

    One segment holds the whole plane: a single name to pass around and
    a single unlink to clean up.  Raises ``RuntimeError`` when the
    platform has no ``shared_memory`` and ``OSError`` when the segment
    cannot be created (full or unwritable ``/dev/shm``) — callers that
    want the pickle fallback catch those.
    """
    if _shm is None:
        raise RuntimeError(
            "multiprocessing.shared_memory is unavailable on this platform"
        )
    fields = arrays.export_fields()
    layout: list[tuple[str, str, tuple[int, ...], int]] = []
    offset = 0
    for name in sorted(fields):
        arr = np.ascontiguousarray(fields[name])
        fields[name] = arr
        offset = _aligned(offset)
        layout.append((name, arr.dtype.str, tuple(arr.shape), offset))
        offset += arr.nbytes
    segment = f"{PLANE_SEGMENT_PREFIX}{os.getpid():x}-{secrets.token_hex(4)}"
    shm = _shm.SharedMemory(create=True, size=max(offset, 1), name=segment)
    for name, dtype, shape, off in layout:
        view = np.ndarray(shape, dtype=np.dtype(dtype), buffer=shm.buf, offset=off)
        view[...] = fields[name]
    handle = PlaneHandle(
        segment=segment,
        fields=tuple(layout),
        total_power=arrays.total_power,
        nbytes=offset,
    )
    return ScenePlane(shm, handle)


#: Worker-side attachments, one per segment name.  The SharedMemory
#: object must outlive every view into it, so it is cached for the life
#: of the process (the OS unmaps at exit); repeat attaches are free.
_ATTACHED: dict[str, tuple[object, SceneArrays]] = {}


def attach(handle: PlaneHandle) -> SceneArrays:
    """Map *handle*'s segment and rebuild a zero-copy :class:`SceneArrays`.

    Every array attribute is a **read-only** view into the shared
    buffer (the plane is immutable by contract — a stray in-place write
    in a kernel would corrupt every worker at once, so NumPy is told to
    refuse it).  Attaching the same segment again returns the cached
    instance.  Raises ``FileNotFoundError`` once the owner has unlinked.
    """
    if _shm is None:
        raise RuntimeError(
            "multiprocessing.shared_memory is unavailable on this platform"
        )
    cached = _ATTACHED.get(handle.segment)
    if cached is not None:
        return cached[1]
    shm = _shm.SharedMemory(name=handle.segment)
    views: dict[str, np.ndarray] = {}
    for name, dtype, shape, off in handle.fields:
        view = np.ndarray(shape, dtype=np.dtype(dtype), buffer=shm.buf, offset=off)
        view.flags.writeable = False
        views[name] = view
    arrays = SceneArrays.from_fields(views, total_power=handle.total_power)
    _ATTACHED[handle.segment] = (shm, arrays)
    return arrays


class PlaneRegistry:
    """Process-wide refcounted ownership of published scene planes.

    Several :class:`~repro.api.RenderSession` pools in one serving
    process can serve the same compiled scene; publishing one segment
    per pool would duplicate the payload in ``/dev/shm``.  The registry
    keys published planes by an opaque caller-chosen string
    (:attr:`repro.api.SceneProgram.plane_key`) and refcounts acquires
    (the registry itself is per-process — separate serving processes
    each own their segments):

    * :meth:`acquire` publishes on first use and returns the (shared)
      :class:`PlaneHandle`; later acquires of the same key return the
      same handle without touching ``/dev/shm``.
    * :meth:`release` decrements; the **last** release closes *and
      unlinks* the segment.  Acquires and releases must pair exactly —
      the session context manager guarantees that even on exceptions.

    Thread-safe; keys are process-local (the handle, as ever, is what
    crosses process boundaries).
    """

    class _Entry:
        """One key's plane, refcount, and publish latch."""

        __slots__ = ("lock", "plane", "refs", "dead")

        def __init__(self) -> None:
            self.lock = threading.Lock()
            self.plane: Optional[ScenePlane] = None
            self.refs = 0
            self.dead = False  # unlinked and removed; re-acquire must retry

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._planes: dict[str, PlaneRegistry._Entry] = {}

    def acquire(
        self, key: str, arrays: "Callable[[], SceneArrays] | SceneArrays"
    ) -> PlaneHandle:
        """Return the published handle for *key*, publishing if needed.

        The registry lock guards only the key table; the (possibly
        expensive) compile + publish happens under a per-key latch, so
        sessions on *different* scenes never serialize on each other.

        Args:
            key: Process-wide identity of the compiled scene.
            arrays: The :class:`SceneArrays` to publish on first acquire,
                or a zero-argument callable producing them (so callers
                can defer compilation until a publish actually happens).
        """
        while True:
            with self._lock:
                entry = self._planes.get(key)
                if entry is None:
                    entry = self._planes[key] = PlaneRegistry._Entry()
            with entry.lock:
                if entry.dead:
                    continue  # lost a race with the last release; retry
                if entry.plane is None:
                    payload = arrays() if callable(arrays) else arrays
                    entry.plane = publish(payload)
                entry.refs += 1
                return entry.plane.handle

    def release(self, key: str) -> None:
        """Drop one reference; the last one closes and unlinks the plane."""
        with self._lock:
            entry = self._planes.get(key)
        if entry is None:
            return  # idempotent: double-release must not raise in cleanup
        plane = None
        with entry.lock:
            if entry.refs == 0:
                return
            entry.refs -= 1
            if entry.refs == 0:
                plane, entry.plane = entry.plane, None
                entry.dead = True
                with self._lock:
                    if self._planes.get(key) is entry:
                        del self._planes[key]
        if plane is not None:
            plane.close()
            plane.unlink()

    def _entry(self, key: str) -> Optional["PlaneRegistry._Entry"]:
        with self._lock:
            return self._planes.get(key)

    def refcount(self, key: str) -> int:
        """Current reference count for *key* (0 when unpublished)."""
        entry = self._entry(key)
        return entry.refs if entry is not None else 0

    def segment_name(self, key: str) -> Optional[str]:
        """The live segment name behind *key*, or ``None``."""
        entry = self._entry(key)
        if entry is None or entry.plane is None:
            return None
        return entry.plane.name

    def active_keys(self) -> list[str]:
        """Keys with a live published plane (tests and diagnostics)."""
        with self._lock:
            return sorted(
                k for k, e in self._planes.items() if e.plane is not None
            )


#: The process-wide registry instance (see :func:`plane_registry`).
_REGISTRY = PlaneRegistry()


def plane_registry() -> PlaneRegistry:
    """The process-wide :class:`PlaneRegistry` every session shares."""
    return _REGISTRY


def detach_all() -> None:
    """Drop this process's cached attachments (tests; workers never need to).

    Closing invalidates the cached views, so this must only run when no
    engine built from them is still live.
    """
    while _ATTACHED:
        _, (shm, _arrays) = _ATTACHED.popitem()
        shm.close()  # type: ignore[attr-defined]


def leaked_segments() -> list[str]:
    """Plane segments still registered with the OS (should be empty).

    Scans ``/dev/shm`` for :data:`PLANE_SEGMENT_PREFIX` names — the
    release-contract check tests and CI run after every pool teardown.
    Returns ``[]`` on platforms without a scannable ``/dev/shm``.
    """
    root = "/dev/shm"
    if not os.path.isdir(root):  # pragma: no cover — non-Linux hosts
        return []
    return sorted(
        name for name in os.listdir(root)
        if name.startswith(PLANE_SEGMENT_PREFIX)
    )
