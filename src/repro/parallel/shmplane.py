"""Zero-copy shared-memory scene plane for process-pool workers.

The paper's shared-memory variant (Figure 5.2) assumes every worker
reads *one* scene and *one* bin forest in place.  The process pool
(:mod:`repro.parallel.procpool`) gets true multi-core execution, but its
original transport shipped the scene by pickle and re-compiled the flat
octree inside every worker — exactly the per-worker duplication the
shared-memory design exists to avoid, and the dominant startup cost on
large scenes (the computer-lab flat compile walks ~28k pointer nodes).

This module publishes the compiled scene — every array of
:class:`~repro.core.vectorized.SceneArrays`, including the eleven
:class:`~repro.geometry.flatoctree.FlatOctree` arrays and the packed
per-leaf candidate lists — into **one named**
``multiprocessing.shared_memory`` **segment**:

* :func:`publish` lays the arrays into the segment back to back
  (16-byte aligned) and returns a :class:`ScenePlane` that owns the
  segment's lifecycle.
* :attr:`ScenePlane.handle` is a :class:`PlaneHandle`: the segment name
  plus ``(field, dtype, shape, offset)`` rows and the one non-array
  scalar (``total_power``).  It pickles in a few kilobytes regardless of
  scene size — that is all that ever crosses the process boundary.
* :func:`attach` (worker side) maps the segment and rebuilds a
  :class:`SceneArrays` whose attributes are **read-only views** into the
  shared buffer — no copies, no octree compilation, bit-identical
  tracing (the plane holds the exact bytes the publisher computed).

Lifecycle contract
------------------
The publisher is the segment's owner: it must :meth:`ScenePlane.close`
*and* :meth:`ScenePlane.unlink` when done (the context manager does
both, including on exceptions).  Workers only ever attach; their
mappings are cached per segment for the life of the process and torn
down by the OS at process exit — a worker must **not** unlink.  After
``unlink`` the name is gone: late attaches raise ``FileNotFoundError``
and the handle is dead.  :func:`leaked_segments` scans for segments the
publisher failed to release (tests assert it stays empty).

When ``multiprocessing.shared_memory`` is unavailable (exotic platforms,
sandboxed /dev/shm) the pool falls back to pickling the scene — see
:func:`repro.parallel.procpool.resolve_share_plane`.

Generalized segment machinery
-----------------------------
The layout/ownership primitives are shared with the **outbound** half of
the transport, the per-worker result blocks of
:mod:`repro.parallel.resultplane`: :func:`layout_fields` places any
name -> array mapping at aligned offsets, :func:`allocate_segment`
creates a raw leak-scannable segment, and :class:`SegmentOwner` is the
idempotent close/unlink lifecycle both plane directions use.  Every
segment name this package mints starts with
:data:`PLANE_SEGMENT_PREFIX`, so one :func:`leaked_segments` scan covers
the scene plane and all result blocks.
"""

from __future__ import annotations

import os
import secrets
import threading
from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from ..core.vectorized import SceneArrays

try:  # pragma: no cover — import succeeds on every supported platform
    from multiprocessing import shared_memory as _shm
except ImportError:  # pragma: no cover
    _shm = None  # type: ignore[assignment]

__all__ = [
    "PLANE_SEGMENT_PREFIX",
    "PlaneHandle",
    "PlaneRegistry",
    "ScenePlane",
    "SegmentOwner",
    "allocate_segment",
    "layout_fields",
    "plane_available",
    "plane_registry",
    "publish",
    "attach",
    "detach_all",
    "leaked_segments",
    "attach_segment",
]

#: Every plane segment name starts with this, so leak checks (tests, CI)
#: can scan ``/dev/shm`` without false positives from other software.
PLANE_SEGMENT_PREFIX = "photon-plane-"

#: Field offsets are rounded up to this many bytes so every dtype in the
#: plane (float64/int64/int32/bool) lands aligned.
_ALIGN = 16


def plane_available() -> bool:
    """True when this platform can create shared-memory segments."""
    return _shm is not None


#: Serializes the brief resource-tracker patch in :func:`attach_segment`
#: against a concurrent create (whose registration must NOT be lost).
_TRACKER_PATCH_LOCK = threading.Lock()


def attach_segment(name: str):
    """Map an existing segment *without* telling the resource tracker.

    ``SharedMemory(name=...)`` registers the segment with the attaching
    process's resource tracker (until 3.13's ``track=False``) even
    though the attacher is not the owner.  That breaks ownership both
    ways: a pool worker forked before the parent's tracker existed
    spawns its **own** tracker, which "cleans up" — unlinks — the
    parent's live segment when the worker exits; and a worker sharing
    the parent's tracker that *unregisters* instead would erase the
    owner's legitimate registration (the tracker cache is keyed by name
    only).  So attaches must never touch the tracker at all:
    registration is suppressed for the duration of the map.  Every
    attach path in this package (scene plane and result blocks) goes
    through here; only the publishing side registers, and its ``unlink``
    unregisters.

    Residual limitation: the suppression patch is process-global, so a
    ``SharedMemory(create=True)`` issued by *foreign* code in another
    thread during the (microseconds-wide) patched window would also
    skip registration.  :data:`_TRACKER_PATCH_LOCK` protects every
    create this package performs; code outside it is on its own until
    3.13's ``track=False`` removes the need for the patch entirely.
    """
    if _shm is None:
        raise RuntimeError(
            "multiprocessing.shared_memory is unavailable on this platform"
        )
    try:
        from multiprocessing import resource_tracker
    except ImportError:  # pragma: no cover — tracker absent off-CPython
        return _shm.SharedMemory(name=name)
    with _TRACKER_PATCH_LOCK:
        original = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            return _shm.SharedMemory(name=name)
        finally:
            resource_tracker.register = original


def _aligned(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


def layout_fields(
    fields: dict,
) -> tuple[list[tuple[str, str, tuple[int, ...], int]], int]:
    """Lay a name -> array mapping into one segment, back to back.

    The scene plane's layout engine (:func:`publish`): arrays are
    placed in sorted-name order at 16-byte-aligned offsets; *fields* is
    normalised to contiguous arrays in place.  Returns the
    ``(name, dtype_str, shape, offset)`` rows plus the total byte size.
    The result plane lays out differently — fixed-stride per-slot
    blocks in :data:`~repro.core.vectorized.EVENT_FIELDS` order
    (``resultplane._block_layout``) — but shares this module's
    alignment rule (:func:`_aligned`) and segment primitives.
    """
    layout: list[tuple[str, str, tuple[int, ...], int]] = []
    offset = 0
    for name in sorted(fields):
        arr = np.ascontiguousarray(fields[name])
        fields[name] = arr
        offset = _aligned(offset)
        layout.append((name, arr.dtype.str, tuple(arr.shape), offset))
        offset += arr.nbytes
    return layout, offset


def segment_name(tag: str) -> str:
    """A fresh leak-scannable segment name (``photon-plane-<tag>-…``).

    Every segment this package creates — scene plane or result blocks —
    goes through here, so :func:`leaked_segments` (and the CI
    ``/dev/shm`` scan) covers all of them with one prefix.
    """
    return f"{PLANE_SEGMENT_PREFIX}{tag}{os.getpid():x}-{secrets.token_hex(4)}"


def allocate_segment(nbytes: int, tag: str = ""):
    """Create an empty named shared-memory segment of *nbytes*.

    The raw allocation primitive behind the result plane's per-worker
    blocks (the scene plane allocates through :func:`publish`, which
    also writes the payload).  Raises ``RuntimeError`` on platforms
    without ``shared_memory`` and ``OSError`` when ``/dev/shm`` cannot
    hold the segment — callers wanting the pickle fallback catch those.
    """
    if _shm is None:
        raise RuntimeError(
            "multiprocessing.shared_memory is unavailable on this platform"
        )
    # Under the same lock as attach_segment's register patch: the
    # owner's create MUST reach the resource tracker, so it cannot run
    # while another thread has register no-op'd.
    with _TRACKER_PATCH_LOCK:
        return _shm.SharedMemory(
            create=True, size=max(nbytes, 1), name=segment_name(tag)
        )


class SegmentOwner:
    """Owner side of one shared-memory segment: close/unlink lifecycle.

    The generic half of :class:`ScenePlane`, reused by the result plane
    (:class:`repro.parallel.resultplane.ResultPlane`): idempotent
    :meth:`close` and :meth:`unlink`, and a context manager that
    releases on exceptions.  Whoever creates a segment owns it and must
    unlink it; attachers never do.
    """

    def __init__(self, shm) -> None:
        self._shm = shm
        self._closed = False
        self._unlinked = False

    @property
    def name(self) -> str:
        return self._shm.name

    def close(self) -> None:
        """Unmap the owner's view (idempotent); the segment survives."""
        if not self._closed:
            self._shm.close()
            self._closed = True

    def unlink(self) -> None:
        """Remove the segment name (idempotent); late attaches now fail."""
        if not self._unlinked:
            self._shm.unlink()
            self._unlinked = True

    def __enter__(self) -> "SegmentOwner":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
        self.unlink()


@dataclass(frozen=True)
class PlaneHandle:
    """Everything a worker needs to reattach a published plane.

    Pickles as names + shapes + dtypes + offsets (a few KB), never the
    array payload: the payload lives in the named segment.

    Attributes:
        segment: Shared-memory segment name.
        fields: ``(name, dtype_str, shape, offset)`` per array, in the
            exact layout :func:`publish` wrote.
        total_power: The one scalar :class:`SceneArrays` attribute.
        nbytes: Total segment payload size (diagnostics only).
    """

    segment: str
    fields: tuple[tuple[str, str, tuple[int, ...], int], ...]
    total_power: float
    nbytes: int


class ScenePlane(SegmentOwner):
    """Owner side of a published plane: the segment plus its handle.

    Use as a context manager for exception-safe release::

        with publish(SceneArrays(scene)) as plane:
            pool = Pool(initializer=..., initargs=(plane.handle, ...))
            ...
        # segment closed AND unlinked here, error or not
    """

    def __init__(self, shm, handle: PlaneHandle) -> None:
        super().__init__(shm)
        self.handle = handle

    @property
    def name(self) -> str:
        return self.handle.segment


def publish(arrays: SceneArrays) -> ScenePlane:
    """Copy *arrays* into a fresh named segment; returns its owner.

    One segment holds the whole plane: a single name to pass around and
    a single unlink to clean up.  Raises ``RuntimeError`` when the
    platform has no ``shared_memory`` and ``OSError`` when the segment
    cannot be created (full or unwritable ``/dev/shm``) — callers that
    want the pickle fallback catch those.
    """
    fields = arrays.export_fields()
    layout, nbytes = layout_fields(fields)
    shm = allocate_segment(nbytes)
    for name, dtype, shape, off in layout:
        view = np.ndarray(shape, dtype=np.dtype(dtype), buffer=shm.buf, offset=off)
        view[...] = fields[name]
    handle = PlaneHandle(
        segment=shm.name,
        fields=tuple(layout),
        total_power=arrays.total_power,
        nbytes=nbytes,
    )
    return ScenePlane(shm, handle)


#: Worker-side attachments, one per segment name.  The SharedMemory
#: object must outlive every view into it, so it is cached for the life
#: of the process (the OS unmaps at exit); repeat attaches are free.
_ATTACHED: dict[str, tuple[object, SceneArrays]] = {}


def attach(handle: PlaneHandle) -> SceneArrays:
    """Map *handle*'s segment and rebuild a zero-copy :class:`SceneArrays`.

    Every array attribute is a **read-only** view into the shared
    buffer (the plane is immutable by contract — a stray in-place write
    in a kernel would corrupt every worker at once, so NumPy is told to
    refuse it).  Attaching the same segment again returns the cached
    instance.  Raises ``FileNotFoundError`` once the owner has unlinked.
    """
    if _shm is None:
        raise RuntimeError(
            "multiprocessing.shared_memory is unavailable on this platform"
        )
    cached = _ATTACHED.get(handle.segment)
    if cached is not None:
        return cached[1]
    shm = attach_segment(handle.segment)
    views: dict[str, np.ndarray] = {}
    for name, dtype, shape, off in handle.fields:
        view = np.ndarray(shape, dtype=np.dtype(dtype), buffer=shm.buf, offset=off)
        view.flags.writeable = False
        views[name] = view
    arrays = SceneArrays.from_fields(views, total_power=handle.total_power)
    _ATTACHED[handle.segment] = (shm, arrays)
    return arrays


class PlaneRegistry:
    """Process-wide refcounted ownership of published scene planes.

    Several :class:`~repro.api.RenderSession` pools in one serving
    process can serve the same compiled scene; publishing one segment
    per pool would duplicate the payload in ``/dev/shm``.  The registry
    keys published planes by an opaque caller-chosen string
    (:attr:`repro.api.SceneProgram.plane_key`) and refcounts acquires
    (the registry itself is per-process — separate serving processes
    each own their segments):

    * :meth:`acquire` publishes on first use and returns the (shared)
      :class:`PlaneHandle`; later acquires of the same key return the
      same handle without touching ``/dev/shm``.
    * :meth:`release` decrements; the **last** release closes *and
      unlinks* the segment.  Acquires and releases must pair exactly —
      the session context manager guarantees that even on exceptions.

    Thread-safe; keys are process-local (the handle, as ever, is what
    crosses process boundaries).
    """

    class _Entry:
        """One key's plane, refcount, and publish latch."""

        __slots__ = ("lock", "plane", "refs", "dead")

        def __init__(self) -> None:
            self.lock = threading.Lock()
            self.plane: Optional[ScenePlane] = None
            self.refs = 0
            self.dead = False  # unlinked and removed; re-acquire must retry

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._planes: dict[str, PlaneRegistry._Entry] = {}

    def acquire(
        self, key: str, arrays: "Callable[[], SceneArrays] | SceneArrays"
    ) -> PlaneHandle:
        """Return the published handle for *key*, publishing if needed.

        The registry lock guards only the key table; the (possibly
        expensive) compile + publish happens under a per-key latch, so
        sessions on *different* scenes never serialize on each other.

        Args:
            key: Process-wide identity of the compiled scene.
            arrays: The :class:`SceneArrays` to publish on first acquire,
                or a zero-argument callable producing them (so callers
                can defer compilation until a publish actually happens).
        """
        while True:
            with self._lock:
                entry = self._planes.get(key)
                if entry is None:
                    entry = self._planes[key] = PlaneRegistry._Entry()
            with entry.lock:
                if entry.dead:
                    continue  # lost a race with the last release; retry
                if entry.plane is None:
                    payload = arrays() if callable(arrays) else arrays
                    entry.plane = publish(payload)
                entry.refs += 1
                return entry.plane.handle

    def release(self, key: str) -> None:
        """Drop one reference; the last one closes and unlinks the plane."""
        with self._lock:
            entry = self._planes.get(key)
        if entry is None:
            return  # idempotent: double-release must not raise in cleanup
        plane = None
        with entry.lock:
            if entry.refs == 0:
                return
            entry.refs -= 1
            if entry.refs == 0:
                plane, entry.plane = entry.plane, None
                entry.dead = True
                with self._lock:
                    if self._planes.get(key) is entry:
                        del self._planes[key]
        if plane is not None:
            plane.close()
            plane.unlink()

    def _entry(self, key: str) -> Optional["PlaneRegistry._Entry"]:
        with self._lock:
            return self._planes.get(key)

    def refcount(self, key: str) -> int:
        """Current reference count for *key* (0 when unpublished)."""
        entry = self._entry(key)
        return entry.refs if entry is not None else 0

    def segment_name(self, key: str) -> Optional[str]:
        """The live segment name behind *key*, or ``None``."""
        entry = self._entry(key)
        if entry is None or entry.plane is None:
            return None
        return entry.plane.name

    def active_keys(self) -> list[str]:
        """Keys with a live published plane (tests and diagnostics)."""
        with self._lock:
            return sorted(
                k for k, e in self._planes.items() if e.plane is not None
            )


#: The process-wide registry instance (see :func:`plane_registry`).
_REGISTRY = PlaneRegistry()


def plane_registry() -> PlaneRegistry:
    """The process-wide :class:`PlaneRegistry` every session shares."""
    return _REGISTRY


def detach_all() -> None:
    """Drop this process's cached attachments (tests; workers never need to).

    Closing invalidates the cached views, so this must only run when no
    engine built from them is still live.
    """
    while _ATTACHED:
        _, (shm, _arrays) = _ATTACHED.popitem()
        shm.close()  # type: ignore[attr-defined]


def leaked_segments() -> list[str]:
    """Plane segments still registered with the OS (should be empty).

    Scans ``/dev/shm`` for :data:`PLANE_SEGMENT_PREFIX` names — the
    release-contract check tests and CI run after every pool teardown.
    Returns ``[]`` on platforms without a scannable ``/dev/shm``.
    """
    root = "/dev/shm"
    if not os.path.isdir(root):  # pragma: no cover — non-Linux hosts
        return []
    return sorted(
        name for name in os.listdir(root)
        if name.startswith(PLANE_SEGMENT_PREFIX)
    )
