"""Shared-memory Photon: the algorithm of Figure 5.2.

All workers share one bin forest; "mutually exclusive access is insured
through the use of semaphores to lock access to nodes in the bin forest,
and follows a multiple reader, single writer protocol."  Locking here is
per bin *tree* (one patch's histogram): that is the granularity at which
the splitting phase of Figure 5.2 excludes other writers while "all other
processes may read any other part of the bin forest".

Workers are real Python threads.  The GIL serialises bytecode, so this
variant demonstrates *correctness* of the protocol (identical invariants
to serial, no lost tallies); wall-clock speedup for the shared-memory
chapter figures comes from the Power Onyx contention model in
:mod:`repro.cluster`.

Two engines, two disciplines:

* ``engine="scalar"`` keeps the historical Figure 5.2 demonstration —
  every tally goes through the locked forest exactly as the paper's
  pseudo-code updates it.
* ``engine="vector"`` drops the per-tree locks entirely in favour of a
  **sharded reduction**: threads trace private event blocks on
  contiguous photon-index shares, then each thread builds the bin trees
  of the patches it *owns* (round-robin
  :func:`repro.parallel.procpool.partition_patches` ownership) from the
  canonical global event sequence, and the disjoint sections merge
  lock-free via :func:`repro.parallel.distributed.merge_rank_forests` —
  the same discipline the process pool proved.  The result is
  node-for-node **identical to a serial vector run for any worker
  count** (the old locked replay only guaranteed per-patch totals), and
  ``lock_contention`` is structurally zero.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Sequence

from ..core.bintree import BinForest, SplitPolicy
from ..core.simulator import ACCELS, ENGINES, TraceStats, trace_photon
from ..geometry.scene import Scene
from ..rng import Lcg48
from .distributed import rank_share

__all__ = [
    "RWLock",
    "SharedForest",
    "SharedConfig",
    "SharedResult",
    "run_shared",
]


class RWLock:
    """A multiple-reader / single-writer lock with contention counters."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._readers_ok = threading.Condition(self._lock)
        self._writers_ok = threading.Condition(self._lock)
        self._readers = 0
        self._writer = False
        self._writers_waiting = 0
        #: Times an acquire had to wait (a proxy for memory contention).
        self.contended = 0

    def acquire_read(self) -> None:
        """Enter as a reader; blocks while a writer holds or waits."""
        with self._lock:
            if self._writer or self._writers_waiting:
                self.contended += 1
            # Writers get priority to avoid starvation.
            while self._writer or self._writers_waiting:
                self._readers_ok.wait()
            self._readers += 1

    def release_read(self) -> None:
        """Leave the reader section."""
        with self._lock:
            self._readers -= 1
            if self._readers == 0:
                self._writers_ok.notify()

    def acquire_write(self) -> None:
        """Enter as the exclusive writer; blocks out everyone else."""
        with self._lock:
            if self._writer or self._readers:
                self.contended += 1
            self._writers_waiting += 1
            while self._writer or self._readers:
                self._writers_ok.wait()
            self._writers_waiting -= 1
            self._writer = True

    def release_write(self) -> None:
        """Leave the writer section, waking waiters."""
        with self._lock:
            self._writer = False
            self._writers_ok.notify()
            self._readers_ok.notify_all()

    def __enter__(self) -> "RWLock":
        self.acquire_write()
        return self

    def __exit__(self, *exc) -> None:
        self.release_write()


class SharedForest:
    """A bin forest guarded by per-tree reader/writer locks.

    The forest-wide counters take a dedicated mutex; tree creation takes
    the same mutex so two workers cannot race a tree into existence.
    """

    def __init__(self, policy: SplitPolicy) -> None:
        self.forest = BinForest(policy)
        self._meta_lock = threading.Lock()
        self._tree_locks: dict[int, RWLock] = {}

    def _lock_for(self, patch_id: int) -> RWLock:
        lock = self._tree_locks.get(patch_id)
        if lock is None:
            with self._meta_lock:
                lock = self._tree_locks.get(patch_id)
                if lock is None:
                    lock = RWLock()
                    self._tree_locks[patch_id] = lock
        return lock

    def tally(self, patch_id: int, coords, band: int) -> None:
        """Locked UpdateBinCount + NeedsSplit/Split of Figure 5.2."""
        lock = self._lock_for(patch_id)
        lock.acquire_write()
        try:
            tree = self.forest.tree(patch_id)
            tree.tally(coords, band)
        finally:
            lock.release_write()
        with self._meta_lock:
            self.forest.total_tallies += 1
            self.forest.band_tallies[band] += 1

    def record_emission(self, band: int) -> None:
        """Thread-safe emission accounting."""
        with self._meta_lock:
            self.forest.photons_emitted += 1
            self.forest.band_emitted[band] += 1

    def total_contention(self) -> int:
        """Sum of blocked lock acquisitions across all trees."""
        return sum(lock.contended for lock in self._tree_locks.values())


@dataclass(frozen=True)
class SharedConfig:
    """Parameters of a shared-memory run.

    Attributes:
        n_photons: Total photon budget across all workers.
        seed: Base RNG seed.
        policy: Bin split policy.
        engine: ``"scalar"`` traces per photon on leapfrog rank
            substreams through the per-tree-locked forest (the
            historical Figure 5.2 behaviour); ``"vector"`` gives each
            worker a contiguous photon-index share traced in NumPy
            batches on per-photon substreams and builds the forest
            lock-free by ownership-sharded reduction — the whole forest
            is then node-for-node identical to a serial vector run for
            *every* worker count.
        batch_size: Photons per vector batch (vector engine only).
        accel: Vector-engine intersection accelerator (see
            :data:`repro.core.simulator.ACCELS`); answers are identical
            in every mode.
    """

    n_photons: int
    seed: int = 0x1234ABCD330E
    policy: SplitPolicy = field(default_factory=SplitPolicy)
    engine: str = "scalar"
    batch_size: int = 4096
    accel: str = "auto"

    def __post_init__(self) -> None:
        if self.n_photons < 0:
            raise ValueError("n_photons must be non-negative")
        if self.engine not in ENGINES:
            raise ValueError(f"unknown engine {self.engine!r}; pick from {ENGINES}")
        if self.batch_size < 1:
            raise ValueError("batch_size must be positive")
        if self.accel not in ACCELS:
            raise ValueError(f"unknown accel {self.accel!r}; pick from {ACCELS}")


@dataclass
class SharedResult:
    """Output of a shared-memory run."""

    forest: BinForest
    stats: TraceStats
    per_worker_photons: list[int]
    lock_contention: int


def _worker(
    shared: SharedForest,
    scene: Scene,
    config: SharedConfig,
    worker: int,
    n_workers: int,
    stats_out: list[TraceStats],
    emitted_out: list[int],
) -> None:
    rng = Lcg48.leapfrog(config.seed, worker, n_workers)
    my_share = rank_share(config.n_photons, worker, n_workers)
    stats = TraceStats()
    for _ in range(my_share):
        events, photon_stats = trace_photon(scene, rng)
        stats.merge(photon_stats)
        shared.record_emission(events[0].band)
        for ev in events:
            shared.tally(ev.patch_id, ev.coords, ev.band)
    stats_out[worker] = stats
    emitted_out[worker] = my_share


class _ThreadMap:
    """A ``starmap`` executor over real threads, in job order.

    Lets the vector path reuse the process pool's phase-2 builder
    (:func:`repro.parallel.procpool.build_forest_parallel`) unchanged:
    anything pool-shaped with ``starmap`` works.  A job's exception is
    re-raised in the caller, matching ``multiprocessing.Pool`` semantics.
    """

    def starmap(self, fn, jobs) -> list:
        jobs = list(jobs)
        results: list = [None] * len(jobs)
        errors: list = [None] * len(jobs)

        def call(i: int, job) -> None:
            try:
                results[i] = fn(*job)
            except BaseException as exc:  # noqa: BLE001 — re-raised below
                errors[i] = exc

        threads = [
            threading.Thread(target=call, args=(i, job), daemon=True)
            for i, job in enumerate(jobs)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        for exc in errors:
            if exc is not None:
                raise exc
        return results


def _run_shared_vector(
    scene: Scene, config: SharedConfig, n_workers: int, arrays=None
) -> SharedResult:
    """Vector-engine body of :func:`run_shared`: sharded, lock-free.

    Phase 1 traces contiguous photon-index shares on worker threads into
    *private* event blocks (no shared state touched while tracing).
    Phase 2 reuses the process pool's ownership discipline: patches are
    partitioned round-robin, each worker replays its owned rows of the
    canonical global event sequence into a private forest, and the
    disjoint sections merge without a single lock
    (:func:`~repro.parallel.procpool.build_forest_parallel`, which also
    re-keys trees into first-tally order).  The forest is therefore
    byte-identical to a serial vector run for any worker count — and
    ``lock_contention`` is zero by construction, not by luck.

    Shard offsets come from one prefix pass over
    :func:`~repro.parallel.distributed.rank_share` (the old per-worker
    recomputation was O(workers^2)).

    Memory trade-off, stated honestly: the ownership reduction needs the
    full event multiset before partitioning, so peak memory scales with
    the run's total events — the same envelope as the process pool's
    parent — where the old locked replay streamed one ``batch_size``
    chunk at a time into the forest.  For budgets where that matters,
    the locked ``engine="scalar"`` path remains the streaming option.
    """
    from ..core.vectorized import EventBatch, VectorEngine
    from .procpool import _shard_starts, book_emissions, build_forest_parallel

    # One engine for all threads: every array trace_range reads is
    # immutable and its tracing state is per-call, so workers share the
    # compiled arrays — the thread-level analogue of the procpool plane.
    # The only cross-thread writes are the patch_tests/box_tests
    # diagnostic counters, whose unsynchronised += may undercount; the
    # answer (events, stats) never reads them.
    engine = VectorEngine(
        scene, arrays=arrays, batch_size=config.batch_size, accel=config.accel
    )
    shards = _shard_starts(config.n_photons, n_workers)
    stats_out: list[TraceStats] = [TraceStats() for _ in range(n_workers)]
    blocks: list[EventBatch] = [EventBatch.empty() for _ in range(n_workers)]

    def trace(worker: int, start: int, count: int) -> None:
        events, stats = engine.trace_range(config.seed, start, count)
        blocks[worker] = events.sorted_canonical()
        stats_out[worker] = stats

    _ThreadMap().starmap(
        trace,
        [(w, start, count) for w, (start, count) in enumerate(shards) if count > 0],
    )
    # Contiguous ascending shards, concatenated in worker order: the
    # global sequence is already canonical (photon, bounce) order.
    events = EventBatch.concat(blocks)
    forest = build_forest_parallel(_ThreadMap(), events, config.policy, n_workers)
    book_emissions(forest, events, config.n_photons)
    merged = TraceStats()
    for s in stats_out:
        merged.merge(s)
    return SharedResult(
        forest=forest,
        stats=merged,
        per_worker_photons=[count for _, count in shards],
        lock_contention=0,
    )


def run_shared(
    scene: Scene, config: SharedConfig, n_workers: int, arrays=None
) -> SharedResult:
    """Run the forall loop of Figure 5.2 on *n_workers* threads.

    With ``n_workers == 1`` and the same seed this produces a forest
    identical to :class:`repro.core.simulator.PhotonSimulator` — the
    equivalence the integration tests pin down.  Under
    ``config.engine == "vector"`` the locked replay is replaced by the
    sharded lock-free reduction of :func:`_run_shared_vector`, and the
    forest matches the serial vector engine node-for-node for *every*
    worker count (the golden suite pins the bytes).

    Args:
        arrays: Optional pre-compiled
            :class:`~repro.core.vectorized.SceneArrays` (e.g. from a
            :class:`repro.api.SceneProgram`) so the vector path reuses
            the session-compiled scene instead of recompiling; ignored
            by the scalar engine.
    """
    if n_workers < 1:
        raise ValueError("need at least one worker")
    if config.engine == "vector":
        return _run_shared_vector(scene, config, n_workers, arrays)
    shared = SharedForest(config.policy)
    stats_out: list[TraceStats] = [TraceStats() for _ in range(n_workers)]
    emitted_out = [0] * n_workers
    threads = [
        threading.Thread(
            target=_worker,
            args=(shared, scene, config, w, n_workers, stats_out, emitted_out),
            daemon=True,
        )
        for w in range(n_workers)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    merged = TraceStats()
    for s in stats_out:
        merged.merge(s)
    return SharedResult(
        forest=shared.forest,
        stats=merged,
        per_worker_photons=emitted_out,
        lock_contention=shared.total_contention(),
    )
