"""Shared-memory Photon: the algorithm of Figure 5.2.

All workers share one bin forest; "mutually exclusive access is insured
through the use of semaphores to lock access to nodes in the bin forest,
and follows a multiple reader, single writer protocol."  Locking here is
per bin *tree* (one patch's histogram): that is the granularity at which
the splitting phase of Figure 5.2 excludes other writers while "all other
processes may read any other part of the bin forest".

Workers are real Python threads.  The GIL serialises bytecode, so this
variant demonstrates *correctness* of the protocol (identical invariants
to serial, no lost tallies); wall-clock speedup for the shared-memory
chapter figures comes from the Power Onyx contention model in
:mod:`repro.cluster`.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Sequence

from ..core.bintree import BinForest, SplitPolicy
from ..core.simulator import ACCELS, ENGINES, TraceStats, trace_photon
from ..geometry.scene import Scene
from ..rng import Lcg48
from .distributed import rank_share

__all__ = [
    "RWLock",
    "SharedForest",
    "SharedConfig",
    "SharedResult",
    "run_shared",
]


class RWLock:
    """A multiple-reader / single-writer lock with contention counters."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._readers_ok = threading.Condition(self._lock)
        self._writers_ok = threading.Condition(self._lock)
        self._readers = 0
        self._writer = False
        self._writers_waiting = 0
        #: Times an acquire had to wait (a proxy for memory contention).
        self.contended = 0

    def acquire_read(self) -> None:
        """Enter as a reader; blocks while a writer holds or waits."""
        with self._lock:
            if self._writer or self._writers_waiting:
                self.contended += 1
            # Writers get priority to avoid starvation.
            while self._writer or self._writers_waiting:
                self._readers_ok.wait()
            self._readers += 1

    def release_read(self) -> None:
        """Leave the reader section."""
        with self._lock:
            self._readers -= 1
            if self._readers == 0:
                self._writers_ok.notify()

    def acquire_write(self) -> None:
        """Enter as the exclusive writer; blocks out everyone else."""
        with self._lock:
            if self._writer or self._readers:
                self.contended += 1
            self._writers_waiting += 1
            while self._writer or self._readers:
                self._writers_ok.wait()
            self._writers_waiting -= 1
            self._writer = True

    def release_write(self) -> None:
        """Leave the writer section, waking waiters."""
        with self._lock:
            self._writer = False
            self._writers_ok.notify()
            self._readers_ok.notify_all()

    def __enter__(self) -> "RWLock":
        self.acquire_write()
        return self

    def __exit__(self, *exc) -> None:
        self.release_write()


class SharedForest:
    """A bin forest guarded by per-tree reader/writer locks.

    The forest-wide counters take a dedicated mutex; tree creation takes
    the same mutex so two workers cannot race a tree into existence.
    """

    def __init__(self, policy: SplitPolicy) -> None:
        self.forest = BinForest(policy)
        self._meta_lock = threading.Lock()
        self._tree_locks: dict[int, RWLock] = {}

    def _lock_for(self, patch_id: int) -> RWLock:
        lock = self._tree_locks.get(patch_id)
        if lock is None:
            with self._meta_lock:
                lock = self._tree_locks.get(patch_id)
                if lock is None:
                    lock = RWLock()
                    self._tree_locks[patch_id] = lock
        return lock

    def tally(self, patch_id: int, coords, band: int) -> None:
        """Locked UpdateBinCount + NeedsSplit/Split of Figure 5.2."""
        lock = self._lock_for(patch_id)
        lock.acquire_write()
        try:
            tree = self.forest.tree(patch_id)
            tree.tally(coords, band)
        finally:
            lock.release_write()
        with self._meta_lock:
            self.forest.total_tallies += 1
            self.forest.band_tallies[band] += 1

    def record_emission(self, band: int) -> None:
        """Thread-safe emission accounting."""
        with self._meta_lock:
            self.forest.photons_emitted += 1
            self.forest.band_emitted[band] += 1

    def total_contention(self) -> int:
        """Sum of blocked lock acquisitions across all trees."""
        return sum(lock.contended for lock in self._tree_locks.values())


@dataclass(frozen=True)
class SharedConfig:
    """Parameters of a shared-memory run.

    Attributes:
        n_photons: Total photon budget across all workers.
        seed: Base RNG seed.
        policy: Bin split policy.
        engine: ``"scalar"`` traces per photon on leapfrog rank
            substreams (the historical Figure 5.2 behaviour);
            ``"vector"`` gives each worker a contiguous photon-index
            share traced in NumPy batches on per-photon substreams —
            per-patch totals are then identical for every worker count,
            and a 1-worker run matches the serial vector engine
            node-for-node.
        batch_size: Photons per vector batch (vector engine only).
        accel: Vector-engine intersection accelerator (see
            :data:`repro.core.simulator.ACCELS`); answers are identical
            in every mode.
    """

    n_photons: int
    seed: int = 0x1234ABCD330E
    policy: SplitPolicy = field(default_factory=SplitPolicy)
    engine: str = "scalar"
    batch_size: int = 4096
    accel: str = "auto"

    def __post_init__(self) -> None:
        if self.n_photons < 0:
            raise ValueError("n_photons must be non-negative")
        if self.engine not in ENGINES:
            raise ValueError(f"unknown engine {self.engine!r}; pick from {ENGINES}")
        if self.batch_size < 1:
            raise ValueError("batch_size must be positive")
        if self.accel not in ACCELS:
            raise ValueError(f"unknown accel {self.accel!r}; pick from {ACCELS}")


@dataclass
class SharedResult:
    """Output of a shared-memory run."""

    forest: BinForest
    stats: TraceStats
    per_worker_photons: list[int]
    lock_contention: int


def _worker(
    shared: SharedForest,
    scene: Scene,
    config: SharedConfig,
    worker: int,
    n_workers: int,
    stats_out: list[TraceStats],
    emitted_out: list[int],
) -> None:
    rng = Lcg48.leapfrog(config.seed, worker, n_workers)
    my_share = rank_share(config.n_photons, worker, n_workers)
    stats = TraceStats()
    for _ in range(my_share):
        events, photon_stats = trace_photon(scene, rng)
        stats.merge(photon_stats)
        shared.record_emission(events[0].band)
        for ev in events:
            shared.tally(ev.patch_id, ev.coords, ev.band)
    stats_out[worker] = stats
    emitted_out[worker] = my_share


def _worker_vector(
    shared: SharedForest,
    scene: Scene,
    config: SharedConfig,
    worker: int,
    n_workers: int,
    stats_out: list[TraceStats],
    emitted_out: list[int],
) -> None:
    """Vector-engine worker body: batch-trace a contiguous index share.

    Events replay through the locked forest in per-photon order (emission
    first), so the tally protocol is exactly Figure 5.2's — only the
    tracing between lock acquisitions is batched.
    """
    from ..core.binning import BinCoords
    from ..core.vectorized import VectorEngine

    start = sum(rank_share(config.n_photons, w, n_workers) for w in range(worker))
    my_share = rank_share(config.n_photons, worker, n_workers)
    engine = VectorEngine(scene, batch_size=config.batch_size, accel=config.accel)
    stats = TraceStats()
    # Trace and replay one batch at a time so in-flight event storage is
    # bounded by batch_size, not the whole share; contiguous batches in
    # index order preserve the canonical global tally order.
    for offset in range(0, my_share, config.batch_size):
        todo = min(config.batch_size, my_share - offset)
        events, batch_stats = engine.trace_range(
            config.seed, start + offset, todo
        )
        stats.merge(batch_stats)
        events = events.sorted_canonical()
        for seq, patch, s, t, theta, r2, band in zip(
            events.seq.tolist(), events.patch.tolist(), events.s.tolist(),
            events.t.tolist(), events.theta.tolist(), events.r2.tolist(),
            events.band.tolist(),
        ):
            if seq == 0:
                shared.record_emission(band)
            shared.tally(patch, BinCoords(s, t, theta, r2), band)
    stats_out[worker] = stats
    emitted_out[worker] = my_share


def run_shared(scene: Scene, config: SharedConfig, n_workers: int) -> SharedResult:
    """Run the forall loop of Figure 5.2 on *n_workers* threads.

    With ``n_workers == 1`` and the same seed this produces a forest
    identical to :class:`repro.core.simulator.PhotonSimulator` — the
    equivalence the integration tests pin down.  Under
    ``config.engine == "vector"`` the same holds against the vector
    engine (and per-patch totals are worker-count invariant, since the
    tally multiset is fixed by the per-photon substreams).
    """
    if n_workers < 1:
        raise ValueError("need at least one worker")
    shared = SharedForest(config.policy)
    stats_out: list[TraceStats] = [TraceStats() for _ in range(n_workers)]
    emitted_out = [0] * n_workers
    body = _worker_vector if config.engine == "vector" else _worker
    threads = [
        threading.Thread(
            target=body,
            args=(shared, scene, config, w, n_workers, stats_out, emitted_out),
            daemon=True,
        )
        for w in range(n_workers)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    merged = TraceStats()
    for s in stats_out:
        merged.merge(s)
    return SharedResult(
        forest=shared.forest,
        stats=merged,
        per_worker_photons=emitted_out,
        lock_contention=shared.total_contention(),
    )
