"""Zero-copy shared-memory result plane: the outbound event transport.

The scene plane (:mod:`repro.parallel.shmplane`) made the *inbound*
transport of the process pool zero-copy — a kilobyte handle crosses the
boundary instead of a megabyte scene pickle.  The *outbound* path stayed
the slow way: every worker pickled its full :class:`EventBatch` (eight
8-byte columns per tally event) back to the parent, so return bytes
scaled with the **photon budget**, not the worker count.  This module
closes that asymmetry:

* The parent preallocates one segment holding **per-shard result
  blocks** (:class:`ResultPlane`), sized from the photon budget times a
  measured events-per-photon headroom factor
  (:data:`EVENTS_PER_PHOTON_HEADROOM`).
* Each trace job writes its canonically sorted events straight into its
  block (:func:`pack_shard` — the columns of
  :data:`repro.core.vectorized.EVENT_FIELDS` via
  :meth:`EventBatch.export_fields`) and returns a tiny
  :class:`ShardResult` descriptor: ``(slot, count, stats)``, a few
  hundred bytes regardless of budget.
* The parent rebuilds **zero-copy views** over the same bytes
  (:meth:`ResultPlane.view` / :func:`gather_shards`) and performs the
  existing canonical merge; the ownership build phase re-reads the same
  blocks worker-side (:func:`take_owned`), so the whole request crosses
  the process boundary in O(workers) descriptors.

Blocks are keyed by **job slot**, not worker identity: ``Pool.starmap``
may hand two shards to one process, and slot-addressed blocks make that
harmless.  Parent and workers never write the same bytes — each job owns
its slot exclusively, and the parent reads only after ``starmap``
returns.

Fallback and overflow contract
------------------------------
Correctness never depends on the plane.  When a shard's events exceed
its block (a pathological mirror scene outrunning the headroom factor)
the worker ships the legacy pickle payload instead and flags
``overflow``; the parent raises a loud :class:`ResultPlaneWarning` while
returning the exact same bytes.  When ``/dev/shm`` cannot hold the
blocks under ``result_plane="auto"`` the pool warns once and falls back
to pickling; ``"on"`` raises instead.  Answers are byte-identical on
every path — the transport knob trades bytes-over-boundary only.

Lifecycle contract
------------------
The parent owns the segment (:class:`ResultPlane` is a
:class:`~repro.parallel.shmplane.SegmentOwner`): blocks are recycled
across warm requests, regrown (old segment unlinked first) when a
bigger budget arrives, and unlinked at pool close even when a worker
raises mid-result.  Worker-side attachments are cached one segment at a
time (:func:`_attach_blocks`) — replacing a regrown segment closes the
stale mapping.  Segment names carry the shared plane prefix, so
:func:`repro.parallel.shmplane.leaked_segments` and the CI ``/dev/shm``
scan cover result blocks too.
"""

from __future__ import annotations

import math
import warnings
from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from ..core.simulator import RESULT_PLANE_MODES, TraceStats
from ..core.vectorized import EVENT_FIELDS, EventBatch
from .shmplane import (
    SegmentOwner,
    allocate_segment,
    attach_segment,
    plane_available,
)

__all__ = [
    "ADAPTIVE_EVENTS_HEADROOM",
    "EVENTS_PER_PHOTON_HEADROOM",
    "MIN_BLOCK_EVENTS",
    "RESULT_PLANE_MODES",
    "ResultBlockHandle",
    "ResultPlane",
    "ResultPlaneWarning",
    "ShardResult",
    "block_capacity",
    "detach_worker_blocks",
    "gather_shards",
    "pack_shard",
    "resolve_result_plane",
    "take_owned",
    "wire_bytes",
]

#: Block capacity per shard photon.  Measured on the three test scenes
#: (50k-photon runs): 1.9 events/photon on the Cornell box, 1.6 on the
#: harpsichord room, 2.3 on the computer lab, with no single photon
#: above 16.  8x covers ~3.5x over the worst measured mean; a scene that
#: still overflows (deep mirror boxes) takes the loud pickle fallback
#: and remains byte-correct.
EVENTS_PER_PHOTON_HEADROOM = 8.0

#: Floor on block capacity so tiny streaming chunks don't allocate
#: degenerate segments (and so per-block rounding never dominates).
MIN_BLOCK_EVENTS = 1024


class ResultPlaneWarning(UserWarning):
    """A result-plane degradation the run survived (overflow/fallback).

    Loud by contract: answers stay byte-identical, but the request paid
    O(events) pickle bytes the plane existed to avoid — worth surfacing
    rather than silently eating.
    """


#: Safety multiplier over a scene's *known* events-per-photon (the
#: ``Scene.events_per_photon_hint`` persisted by the scene loader and
#: stamped by the procedural generator).  The hint is a mean; individual
#: shards fluctuate around it, so 2x covers shard-level variance while
#: still sizing blocks from the scene instead of the global worst case —
#: on the generated corpus (hint ~2.5-3) that is roughly a 30% smaller
#: segment than the blanket 8x, and the gap widens on darker scenes.
ADAPTIVE_EVENTS_HEADROOM = 2.0


def block_capacity(
    photons_per_shard: int, events_per_photon: Optional[float] = None
) -> int:
    """Events a shard's block holds for a *photons_per_shard* budget.

    With *events_per_photon* (a scene's measured or estimated mean tally
    events per emitted photon), capacity is
    ``photons * events_per_photon * ADAPTIVE_EVENTS_HEADROOM``; without
    it, the blanket :data:`EVENTS_PER_PHOTON_HEADROOM` worst case.
    Module globals are read at call time so tests can monkeypatch the
    factors to force the overflow path.
    """
    if events_per_photon is not None:
        if not events_per_photon > 0:
            raise ValueError(
                f"events_per_photon must be positive, got {events_per_photon}"
            )
        need = math.ceil(
            photons_per_shard * events_per_photon * ADAPTIVE_EVENTS_HEADROOM
        )
    else:
        need = math.ceil(photons_per_shard * EVENTS_PER_PHOTON_HEADROOM)
    return max(need, MIN_BLOCK_EVENTS)


def resolve_result_plane(mode: str) -> bool:
    """Decide whether a pool returns events through result blocks.

    ``"on"`` demands it (raising when the platform cannot), ``"off"``
    never uses it, ``"auto"`` uses it exactly when the platform has
    shared memory.  Unlike the scene plane there is no scene-size
    threshold: result bytes scale with the photon budget, which any
    multi-process run has by definition.
    """
    if mode == "off":
        return False
    if mode == "on":
        if not plane_available():
            raise RuntimeError(
                "result_plane='on' but multiprocessing.shared_memory is "
                "unavailable on this platform; use 'off' or 'auto'"
            )
        return True
    if mode != "auto":
        raise ValueError(f"unknown result_plane mode {mode!r}")
    return plane_available()


@dataclass(frozen=True)
class ResultBlockHandle:
    """Everything a worker needs to write (or re-read) a result block.

    Pickles in a few hundred bytes regardless of budget: the payload
    lives in the named segment.  ``column_offsets`` places each
    :data:`~repro.core.vectorized.EVENT_FIELDS` column *within* a block;
    block *i* starts at ``i * block_stride``.

    Attributes:
        segment: Shared-memory segment name.
        capacity: Events each block can hold.
        blocks: Number of blocks (one per trace job / shard).
        column_offsets: ``(name, dtype_str, offset_in_block)`` per column.
        block_stride: Bytes from one block's start to the next.
    """

    segment: str
    capacity: int
    blocks: int
    column_offsets: tuple[tuple[str, str, int], ...]
    block_stride: int


def _block_layout(capacity: int) -> tuple[tuple[tuple[str, str, int], ...], int]:
    """Column offsets within one block plus the aligned block stride."""
    from .shmplane import _aligned

    offsets = []
    off = 0
    for name, dt in EVENT_FIELDS:
        off = _aligned(off)
        offsets.append((name, dt, off))
        off += capacity * np.dtype(dt).itemsize
    return tuple(offsets), _aligned(off)


def _slot_views(shm, handle: "ResultBlockHandle") -> list[dict]:
    """Per-slot column views over *shm* in *handle*'s layout.

    The single reading/writing lens on a result segment, shared by the
    owner (:class:`ResultPlane`) and the worker attach path so the two
    sides can never disagree about where a column lives.
    """
    return [
        {
            name: np.ndarray(
                handle.capacity, dtype=np.dtype(dt), buffer=shm.buf,
                offset=slot * handle.block_stride + off,
            )
            for name, dt, off in handle.column_offsets
        }
        for slot in range(handle.blocks)
    ]


class ResultPlane(SegmentOwner):
    """Parent-side owner of the per-shard result blocks.

    One segment holds every block, so one unlink cleans the whole
    return path.  The parent keeps full-capacity views per block and
    serves length-limited zero-copy :class:`EventBatch` windows through
    :meth:`view`; blocks are recycled verbatim across warm requests
    (the warm-session contract extends to them — see
    ``benchmarks/test_resultplane.py``).
    """

    def __init__(self, blocks: int, capacity: int) -> None:
        column_offsets, stride = _block_layout(capacity)
        shm = allocate_segment(stride * blocks, tag="result-")
        super().__init__(shm)
        self.handle = ResultBlockHandle(
            segment=shm.name,
            capacity=capacity,
            blocks=blocks,
            column_offsets=column_offsets,
            block_stride=stride,
        )
        self._views = _slot_views(shm, self.handle)

    @property
    def capacity(self) -> int:
        return self.handle.capacity

    @property
    def blocks(self) -> int:
        return self.handle.blocks

    @property
    def nbytes(self) -> int:
        return self.handle.block_stride * self.handle.blocks

    def fits(self, blocks: int, capacity: int) -> bool:
        """Whether the existing blocks can serve a request of this shape."""
        return blocks <= self.blocks and capacity <= self.capacity

    def view(self, slot: int, count: int) -> EventBatch:
        """Zero-copy :class:`EventBatch` over block *slot*'s first *count* rows.

        Valid until the plane is closed or the slot is recycled by the
        next trace call — callers that keep events (everyone does, via
        the canonical concat-merge) copy exactly once, at the merge.
        """
        cols = self._views[slot]
        return EventBatch.from_fields(
            {name: cols[name][:count] for name, _ in EVENT_FIELDS}
        )

    def close(self) -> None:
        # Views into the buffer must die before SharedMemory.close() —
        # an exported pointer makes close() raise BufferError.
        self._views = []
        super().close()


@dataclass
class ShardResult:
    """What one trace job sends back: a descriptor, not the events.

    ``slot >= 0`` means the events sit in result block *slot* (this
    object is then a few hundred pickled bytes).  ``slot == -1`` is the
    pickle path: *payload* carries the raw column arrays of
    :data:`~repro.core.vectorized.EVENT_FIELDS`, either because the
    plane is off (normal) or because the shard overflowed its block
    (*overflow* set — the parent warns loudly).
    """

    slot: int
    count: int
    stats: TraceStats
    payload: Optional[tuple] = None
    overflow: bool = field(default=False)


#: This worker's attachment to the (single) live result segment:
#: ``(segment_name, SharedMemory, per-slot column views)``.  One slot —
#: a pool worker serves exactly one pool, and the pool has at most one
#: live result segment; attaching a regrown segment closes the stale
#: mapping (unlike the scene plane, result segments are recycled, so a
#: grow-only cache would pin dead segments in RAM).
_WORKER_BLOCKS: Optional[tuple[str, object, list]] = None


def _attach_blocks(handle: ResultBlockHandle) -> list:
    """Worker-side per-slot column views of *handle*'s segment (cached)."""
    global _WORKER_BLOCKS
    if _WORKER_BLOCKS is not None and _WORKER_BLOCKS[0] == handle.segment:
        return _WORKER_BLOCKS[2]
    if _WORKER_BLOCKS is not None:
        _WORKER_BLOCKS[1].close()  # type: ignore[attr-defined]
    shm = attach_segment(handle.segment)  # the parent owns the name
    views = _slot_views(shm, handle)
    _WORKER_BLOCKS = (handle.segment, shm, views)
    return views


def detach_worker_blocks() -> None:
    """Drop this process's cached result attachment (tests)."""
    global _WORKER_BLOCKS
    if _WORKER_BLOCKS is not None:
        _WORKER_BLOCKS[1].close()  # type: ignore[attr-defined]
        _WORKER_BLOCKS = None


def pack_shard(
    events: EventBatch,
    stats: TraceStats,
    handle: Optional[ResultBlockHandle],
    slot: int,
) -> ShardResult:
    """Ship one shard's events: into its result block, or by pickle.

    The single worker-side exit point of the trace phase.  With a
    *handle* and room in the block, the columns are copied into shared
    memory and only the descriptor returns; without a handle (plane
    off / injected in-process pools) or on overflow, the payload rides
    the pickle as before.
    """
    n = len(events)
    overflow = False
    if handle is not None:
        if n <= handle.capacity:
            block = _attach_blocks(handle)[slot]
            fields = events.export_fields()
            for name, _ in EVENT_FIELDS:
                block[name][:n] = fields[name]
            return ShardResult(slot=slot, count=n, stats=stats)
        overflow = True
    fields = events.export_fields()
    return ShardResult(
        slot=-1,
        count=n,
        stats=stats,
        payload=tuple(fields[name] for name, _ in EVENT_FIELDS),
        overflow=overflow,
    )


def gather_shards(
    results: Sequence[ShardResult], plane: Optional[ResultPlane]
) -> tuple[EventBatch, TraceStats]:
    """Merge shard results (job order) into one canonical batch + stats.

    Plane shards contribute zero-copy views; the single copy happens in
    the concat, which also frees the blocks for recycling by the next
    request.  Shards cover contiguous ascending photon ranges and each
    arrives canonically sorted, so the concatenation is globally
    canonical — exactly the invariant the retired pickle gather relied
    on.  Overflowed shards raise a :class:`ResultPlaneWarning` here (the
    parent process, where warnings actually reach the caller).
    """
    stats = TraceStats()
    blocks = []
    for r in results:
        stats.merge(r.stats)
        if r.slot >= 0:
            if plane is None:
                raise RuntimeError(
                    "shard descriptor references a result block but the "
                    "parent holds no result plane"
                )
            blocks.append(plane.view(r.slot, r.count))
        else:
            if r.overflow:
                warnings.warn(
                    f"result block overflow: a shard produced {r.count} "
                    f"events, above the preallocated capacity "
                    f"(EVENTS_PER_PHOTON_HEADROOM={EVENTS_PER_PHOTON_HEADROOM}); "
                    "the shard fell back to pickling — answer unchanged, "
                    "transport win lost",
                    ResultPlaneWarning,
                    stacklevel=2,
                )
            blocks.append(EventBatch(*r.payload))
    return EventBatch.concat(blocks), stats


def take_owned(
    handle: ResultBlockHandle,
    counts: Sequence[int],
    worker_id: int,
    workers: int,
) -> EventBatch:
    """Worker-side read of the build phase: this owner's event rows.

    Re-reads the shard blocks the trace phase just filled (``counts``
    live rows per slot, in job order), selects the rows whose patch this
    worker owns (``patch % workers == worker_id``), and returns them in
    global canonical order — per-slot selection preserves it because
    slots cover ascending photon ranges.  This is what lets the
    ownership build receive O(1) job arguments instead of re-pickling
    every owned event back across the boundary.
    """
    views = _attach_blocks(handle)
    parts = []
    for slot, count in enumerate(counts):
        if count == 0:
            continue
        ev = EventBatch.from_fields(
            {name: views[slot][name][:count] for name, _ in EVENT_FIELDS}
        )
        rows = np.nonzero(ev.patch % workers == worker_id)[0]
        if rows.size:
            parts.append(ev.take(rows))
    return EventBatch.concat(parts)


def wire_bytes(results: Sequence[ShardResult]) -> int:
    """Bytes these results crossed the process boundary with.

    Diagnostics for the transport benchmarks: descriptors are measured
    exactly (their pickle is tiny); payload shards are counted as the
    descriptor plus the raw column bytes — the dominant term — rather
    than re-pickling megabytes of arrays just to size them.  Cheap
    enough that :meth:`PhotonPool.trace_range` records it per call.
    """
    import pickle

    total = 0
    for r in results:
        if r.payload is None:
            total += len(pickle.dumps(r))
        else:
            header = ShardResult(slot=r.slot, count=r.count, stats=r.stats,
                                 overflow=r.overflow)
            total += len(pickle.dumps(header))
            total += sum(a.nbytes for a in r.payload)
    return total
