"""Parallel Photon: MPI-like substrate, shared- and distributed-memory drivers."""

from .distributed import (
    DistributedConfig,
    DistributedResult,
    RankResult,
    build_balance,
    distributed_worker,
    merge_rank_forests,
    rank_share,
    run_distributed,
    serial_replay,
)
from .geomdist import (
    GeomDistConfig,
    GeomDistResult,
    GeomRankResult,
    RegionGrid,
    run_geometry_distributed,
    serial_reference_tallies,
)
from .loadbalance import (
    Assignment,
    DEFAULT_PILOT_PHOTONS,
    OwnershipMap,
    UnitInfo,
    assign_units,
    load_imbalance,
    pilot_counts,
    pilot_forest,
)
from .mpi import ANY_SOURCE, CommStats, SimComm, run_parallel
from .procpool import (
    build_forest_parallel,
    partition_patches,
    run_procpool,
    trace_events_parallel,
)
from .shared import RWLock, SharedConfig, SharedForest, SharedResult, run_shared

__all__ = [
    "ANY_SOURCE",
    "Assignment",
    "CommStats",
    "DEFAULT_PILOT_PHOTONS",
    "DistributedConfig",
    "DistributedResult",
    "GeomDistConfig",
    "GeomDistResult",
    "GeomRankResult",
    "OwnershipMap",
    "RegionGrid",
    "run_geometry_distributed",
    "serial_reference_tallies",
    "RWLock",
    "RankResult",
    "SharedConfig",
    "SharedForest",
    "SharedResult",
    "SimComm",
    "UnitInfo",
    "assign_units",
    "build_balance",
    "build_forest_parallel",
    "distributed_worker",
    "load_imbalance",
    "merge_rank_forests",
    "partition_patches",
    "pilot_counts",
    "pilot_forest",
    "rank_share",
    "run_distributed",
    "run_parallel",
    "run_procpool",
    "run_shared",
    "serial_replay",
    "trace_events_parallel",
]
