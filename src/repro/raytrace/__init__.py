"""Whitted ray-tracing baseline (chapter 2)."""

from .whitted import WhittedConfig, render_whitted, trace_ray

__all__ = ["WhittedConfig", "render_whitted", "trace_ray"]
