"""Whitted-style recursive ray tracing — the chapter-2 baseline.

Implements equation (2.1): ambient + diffuse from visible point lights +
recursive specular.  Its deliberate *limitations* are the point of the
baseline: luminaires are treated as point sources (hence the
"unrealistically sharp shadows" the paper criticises in Figure 2.2),
there is no colour bleeding between diffuse surfaces, and the answer is
valid for a single viewpoint only.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.viewing import Camera
from ..geometry.ray import Ray
from ..geometry.scene import Scene
from ..geometry.vec import Vec3, dot, reflect_about, sub

__all__ = ["WhittedConfig", "trace_ray", "render_whitted"]


@dataclass(frozen=True)
class WhittedConfig:
    """Shading constants of the Whitted model.

    Attributes:
        ambient: The ``I_a`` ambient intensity per band.
        max_depth: Specular recursion limit.
        light_samples: Always 1 — the model's point-light approximation
            is intentional; exposed so tests can document the sharp-shadow
            artefact by contrast with Photon's area lights.
    """

    ambient: tuple[float, float, float] = (0.05, 0.05, 0.05)
    max_depth: int = 4
    light_samples: int = 1

    def __post_init__(self) -> None:
        if self.max_depth < 0:
            raise ValueError("max_depth must be non-negative")
        if self.light_samples != 1:
            raise ValueError(
                "the Whitted baseline models lights as points; "
                "area sampling is Photon's improvement, not this model's"
            )


def trace_ray(scene: Scene, ray: Ray, config: WhittedConfig, depth: int = 0) -> tuple[float, float, float]:
    """Radiance estimate along *ray* under the Whitted model."""
    hit = scene.intersect(ray)
    if hit is None:
        return (0.0, 0.0, 0.0)
    material = hit.patch.material
    if material.is_emitter:
        e = material.emission
        return (e.r, e.g, e.b)

    normal = hit.shading_normal()
    out = list(config.ambient)

    # Diffuse: one shadow ray to each luminaire's centre (point-light
    # approximation — the source of the hard shadows).
    for lum in scene.luminaires:
        light_point = lum.patch.point_at(0.5, 0.5)
        to_light = sub(light_point, hit.point)
        distance = to_light.length()
        if distance <= 1e-9:
            continue
        direction = to_light / distance
        ndotl = dot(normal, direction)
        if ndotl <= 0.0:
            continue
        if scene.is_occluded(Ray(hit.point, direction, normalized=True), distance):
            continue
        emission = lum.patch.material.emission
        # Inverse-square falloff of a point source.
        atten = ndotl / (distance * distance)
        out[0] += material.diffuse.r * emission.r * atten
        out[1] += material.diffuse.g * emission.g * atten
        out[2] += material.diffuse.b * emission.b * atten

    # Specular: one recursive reflection ray (kS * S term).
    if material.specular > 0.0 and depth < config.max_depth:
        reflected = reflect_about(ray.direction, normal)
        sub_color = trace_ray(
            scene, Ray(hit.point, reflected, normalized=True), config, depth + 1
        )
        out[0] += material.specular * sub_color[0]
        out[1] += material.specular * sub_color[1]
        out[2] += material.specular * sub_color[2]

    return (out[0], out[1], out[2])


def render_whitted(
    scene: Scene, camera: Camera, config: WhittedConfig | None = None
) -> np.ndarray:
    """Render a (height, width, 3) radiance image from one viewpoint.

    Unlike Photon's answer file, the entire computation must be repeated
    for every new viewpoint — the view-dependence the dissertation's
    chapter 2 holds against ray tracing.
    """
    config = config or WhittedConfig()
    out = np.zeros((camera.height, camera.width, 3), dtype=np.float64)
    for j in range(camera.height):
        for i in range(camera.width):
            ray = camera.primary_ray(i, j)
            out[j, i] = trace_ray(scene, ray, config)
    return out
