"""Statistical machinery behind adaptive histogramming.

A histogram bin is hypothesised to hold a uniform distribution, so each
arriving sample falls in the bin's left half with probability p and right
half with q = 1 - p.  The daughter counts are then binomial; once enough
samples accumulate the binomial is well approximated by a normal with
mean np and standard deviation sqrt(npq), and the bin is split when the
daughters differ by more than ``threshold`` standard deviations (the
dissertation uses 3, giving 99.7 % confidence; chapter 3 and 4 discuss
the storage-vs-error trade of other thresholds — see the split-sigma
ablation bench).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = [
    "split_statistic",
    "should_split",
    "normal_approximation_valid",
    "RunningMeanVar",
    "DEFAULT_SPLIT_THRESHOLD",
    "DEFAULT_MIN_COUNT",
]

#: The dissertation's 3-sigma criterion.
DEFAULT_SPLIT_THRESHOLD = 3.0

#: "If we wait until we have a significant number of points in a bin before
#: we decide to split" — the normal approximation needs np and nq of at
#: least a handful; 16 keeps false splits rare without starving refinement.
DEFAULT_MIN_COUNT = 16


def split_statistic(left: int, right: int) -> float:
    """Number of standard deviations separating the daughter counts.

    Follows chapter 4: p is estimated from the daughter with the most
    photons ("to improve accuracy, p is calculated based on the daughter
    bin with the most photons"), sigma = sqrt(n p q), and the statistic is
    ``|left - right| / (2 * sigma_half)`` where sigma_half describes one
    daughter count.  Equivalently we measure how far the larger count
    sits from the even-split mean n/2 in units of sqrt(n p q).

    Returns 0.0 when fewer than 2 samples have arrived (nothing to test).
    """
    if left < 0 or right < 0:
        raise ValueError("daughter counts must be non-negative")
    n = left + right
    if n < 2:
        return 0.0
    big = left if left >= right else right
    p = big / n
    q = 1.0 - p
    if q <= 0.0:
        # All samples on one side: infinitely significant once n is real.
        return math.inf
    sigma = math.sqrt(n * p * q)
    return (big - n / 2.0) / sigma


def should_split(
    left: int,
    right: int,
    *,
    threshold: float = DEFAULT_SPLIT_THRESHOLD,
    min_count: int = DEFAULT_MIN_COUNT,
) -> bool:
    """The dissertation's split decision for one candidate axis.

    Args:
        left / right: Speculative daughter tallies.
        threshold: Rejection level in standard deviations (paper: 3).
        min_count: Minimum total tally before the normal approximation is
            trusted.
    """
    n = left + right
    if n < min_count:
        return False
    return split_statistic(left, right) > threshold


def normal_approximation_valid(left: int, right: int, minimum: float = 5.0) -> bool:
    """Rule-of-thumb check that np and nq both exceed *minimum*."""
    n = left + right
    if n == 0:
        return False
    big = max(left, right)
    p = big / n
    return n * p >= minimum and n * (1.0 - p) >= minimum


@dataclass
class RunningMeanVar:
    """Welford's online mean/variance, used by performance traces.

    Attributes:
        count: Number of samples accumulated.
        mean: Running mean.
    """

    count: int = 0
    mean: float = 0.0
    _m2: float = 0.0

    def add(self, x: float) -> None:
        """Accumulate one observation."""
        self.count += 1
        delta = x - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (x - self.mean)

    def variance(self) -> float:
        """Sample variance (n-1 denominator); 0 for fewer than 2 samples."""
        if self.count < 2:
            return 0.0
        return self._m2 / (self.count - 1)

    def std(self) -> float:
        """Sample standard deviation."""
        return math.sqrt(self.variance())

    def standard_error(self) -> float:
        """Standard error of the mean (0 with no samples)."""
        if self.count == 0:
            return 0.0
        return self.std() / math.sqrt(self.count)
