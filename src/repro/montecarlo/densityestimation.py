"""The Density Estimation baseline (Shirley et al. 1995; Zareski 1995).

Photon's closest prior art and the comparison the dissertation leans on:
particle tracing that records *every* interaction as a hit-point record
("saving the ray history of each photon"), a density-estimation pass
that grids the hit file per surface, and a meshing pass.  Its two
published weaknesses are reproduced measurably:

* the hit file is O(n) in photons — "if each photon requires 100 bytes
  of storage, a realistic scene might consume a terabyte" — versus
  Photon's histogram distillation (compare
  :meth:`DensityEstimationResult.hit_bytes` against
  :meth:`repro.core.bintree.BinForest.memory_bytes`);
* the parallel density-estimation phase is limited by the surface with
  the most hit points — speedup "a mere 4.5 for 16 processors" in bad
  cases — captured analytically by :func:`density_phase_speedup`.
"""

from __future__ import annotations

import struct
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Optional

import numpy as np

from ..geometry.scene import Scene
from ..rng import Lcg48

__all__ = [
    "HIT_RECORD_BYTES",
    "DensityEstimationResult",
    "run_density_estimation",
    "density_phase_speedup",
]

#: On-disk footprint of one hit record.  The paper quotes ~100 bytes per
#: photon interaction for a realistic implementation (position, normal,
#: power, surface id, padding); our packed record keeps the same figure
#: so storage comparisons are apples-to-apples.
HIT_RECORD_BYTES = 100

_RECORD_STRUCT = struct.Struct("<i d d d i 68x")  # patch, s, t, weight, band + pad
assert _RECORD_STRUCT.size == HIT_RECORD_BYTES, _RECORD_STRUCT.size


@dataclass
class DensityEstimationResult:
    """Output of the three-phase Density Estimation pipeline.

    Attributes:
        irradiance: patch_id -> (grid, grid) hit-density array (the
            "approximate irradiance function H for each surface").
        hits_per_patch: Hit-point counts per surface (the parallel
            bottleneck driver).
        total_hits: All interactions recorded.
        hit_file: Path of the phase-1 hit file, if written to disk.
        grid: Mesh resolution used in phase 2/3.
    """

    irradiance: dict[int, np.ndarray]
    hits_per_patch: dict[int, int]
    total_hits: int
    hit_file: Optional[Path]
    grid: int

    @property
    def hit_bytes(self) -> int:
        """Phase-1 storage: O(photons), the paper's terabyte warning."""
        return self.total_hits * HIT_RECORD_BYTES

    def mesh_polygons(self) -> int:
        """Phase-3 output size: one Gouraud quad per grid cell."""
        return len(self.irradiance) * self.grid * self.grid


def run_density_estimation(
    scene: Scene,
    n_photons: int,
    *,
    grid: int = 8,
    seed: int = 0x1234ABCD330E,
    use_disk: bool = False,
) -> DensityEstimationResult:
    """Run the particle-tracing + density-estimation + meshing pipeline.

    Args:
        grid: Fixed (s, t) mesh resolution per surface — fixed, not
            adaptive, which is exactly what Photon's 4-D bins improve on.
        use_disk: Write the phase-1 hit file to a real temporary file
            (the faithful mode); in-memory otherwise (fast test mode).

    Note the algorithmic contrast with Photon: H is a function of
    *position only*, so the result cannot represent mirrors or glare —
    a separate per-viewpoint ray pass would be needed.
    """
    # Deferred import: repro.core.binning depends on repro.montecarlo.stats,
    # so importing the simulator at module load would be circular.
    from ..core.simulator import trace_photon

    if n_photons < 1:
        raise ValueError("need at least one photon")
    if grid < 1:
        raise ValueError("grid must be positive")
    rng = Lcg48(seed)

    records: list[tuple[int, float, float, float, int]] = []
    hit_file: Optional[Path] = None
    fh = None
    if use_disk:
        tmp = tempfile.NamedTemporaryFile(
            prefix="hitpoints-", suffix=".bin", delete=False
        )
        hit_file = Path(tmp.name)
        fh = tmp

    total = 0
    try:
        # Phase 1: particle tracing, recording every interaction.
        for _ in range(n_photons):
            events, _ = trace_photon(scene, rng)
            for ev in events:
                total += 1
                rec = (ev.patch_id, ev.coords.s, ev.coords.t, 1.0, ev.band)
                if fh is not None:
                    fh.write(_RECORD_STRUCT.pack(*rec))
                else:
                    records.append(rec)
        if fh is not None:
            fh.flush()
            fh.close()
            # Phase 2 reads the hit file back, as the real pipeline must.
            data = hit_file.read_bytes()
            records = [
                _RECORD_STRUCT.unpack_from(data, off)
                for off in range(0, len(data), HIT_RECORD_BYTES)
            ]
    finally:
        if fh is not None and not fh.closed:
            fh.close()

    # Phase 2: density estimation — grid histogram per surface.
    irradiance: dict[int, np.ndarray] = {}
    hits_per_patch: dict[int, int] = {}
    for patch_id, s, t, weight, _band in records:
        h = irradiance.get(patch_id)
        if h is None:
            h = np.zeros((grid, grid))
            irradiance[patch_id] = h
        i = min(int(s * grid), grid - 1)
        j = min(int(t * grid), grid - 1)
        h[i, j] += weight
        hits_per_patch[patch_id] = hits_per_patch.get(patch_id, 0) + 1

    # Phase 3 ("meshing") normalises by cell area to an irradiance-like
    # density; Gouraud shading itself is presentation, not computation.
    for patch_id, h in irradiance.items():
        patch = scene.patch_by_id(patch_id)
        cell_area = patch.area / (grid * grid)
        h /= max(cell_area * max(total, 1), 1e-30)

    return DensityEstimationResult(
        irradiance=irradiance,
        hits_per_patch=hits_per_patch,
        total_hits=total,
        hit_file=hit_file,
        grid=grid,
    )


def density_phase_speedup(hits_per_patch: dict[int, int], processors: int) -> float:
    """Ideal speedup of the parallel density-estimation phase.

    Surfaces are indivisible work items ("the density estimation and
    meshing phase speedup is limited by the time needed to process the
    surface with the largest number of hit points"), so with longest-
    processing-time scheduling the makespan is bounded below by the
    largest surface:

        speedup = total / max(ceil-packed makespan)

    Reproduces the published asymmetry: particle tracing scales ~15/16
    while this phase manages ~8.5 (or 4.5) on 16 processors.
    """
    if processors < 1:
        raise ValueError("processors must be positive")
    if not hits_per_patch:
        raise ValueError("no hits recorded")
    # LPT packing of surface costs onto processors.
    loads = [0] * processors
    for hits in sorted(hits_per_patch.values(), reverse=True):
        loads[loads.index(min(loads))] += hits
    total = sum(hits_per_patch.values())
    return total / max(loads)
