"""Batch-means variance estimation for correlated Monte Carlo streams.

Photon's per-batch speed samples and per-bin tallies are weakly
correlated in time (splits change the forest mid-run), so naive i.i.d.
standard errors understate uncertainty.  The batch-means method — group
the stream into contiguous batches, treat batch averages as independent
— is the standard remedy and what the performance traces' error bands
use.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

__all__ = ["BatchMeans", "batch_means", "autocorrelation"]


@dataclass(frozen=True)
class BatchMeans:
    """Result of a batch-means analysis.

    Attributes:
        mean: Grand mean of the stream.
        standard_error: Standard error estimated from batch averages.
        batches: Number of batches used.
        batch_size: Observations per batch (last partial batch dropped).
    """

    mean: float
    standard_error: float
    batches: int
    batch_size: int

    def confidence_halfwidth(self, z: float = 1.96) -> float:
        """Half-width of the (default 95 %) normal confidence interval."""
        return z * self.standard_error


def batch_means(samples: Sequence[float], batches: int = 16) -> BatchMeans:
    """Batch-means mean and standard error of *samples*.

    Args:
        samples: The observation stream, in order.
        batches: Batch count; must leave at least 2 full batches.

    Raises:
        ValueError: when the stream is too short for the batch count.
    """
    if batches < 2:
        raise ValueError("need at least 2 batches")
    n = len(samples)
    size = n // batches
    if size < 1:
        raise ValueError(f"{n} samples cannot fill {batches} batches")
    means = []
    for b in range(batches):
        chunk = samples[b * size : (b + 1) * size]
        means.append(sum(chunk) / size)
    grand = sum(means) / batches
    var = sum((m - grand) ** 2 for m in means) / (batches - 1)
    return BatchMeans(
        mean=grand,
        standard_error=math.sqrt(var / batches),
        batches=batches,
        batch_size=size,
    )


def autocorrelation(samples: Sequence[float], lag: int = 1) -> float:
    """Lag-*lag* autocorrelation coefficient of the stream.

    Raises:
        ValueError: when the stream is shorter than ``lag + 2`` or has
            zero variance.
    """
    n = len(samples)
    if lag < 1:
        raise ValueError("lag must be >= 1")
    if n < lag + 2:
        raise ValueError("stream too short for this lag")
    mean = sum(samples) / n
    den = sum((x - mean) ** 2 for x in samples)
    if den == 0.0:
        raise ValueError("zero-variance stream has undefined autocorrelation")
    num = sum(
        (samples[i] - mean) * (samples[i + lag] - mean) for i in range(n - lag)
    )
    return num / den
