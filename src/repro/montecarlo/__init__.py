"""Monte Carlo substrate: split statistics, adaptive histograms, integration."""

from .densityestimation import (
    DensityEstimationResult,
    HIT_RECORD_BYTES,
    density_phase_speedup,
    run_density_estimation,
)
from .histogram import (
    AdaptiveHistogram,
    FixedHistogram,
    HistogramBin,
    l1_density_error,
)
from .integration import (
    IntegrationResult,
    expected_value,
    hit_or_miss_area,
    integrate_importance,
    integrate_uniform,
)
from .stats import (
    DEFAULT_MIN_COUNT,
    DEFAULT_SPLIT_THRESHOLD,
    RunningMeanVar,
    normal_approximation_valid,
    should_split,
    split_statistic,
)

__all__ = [
    "AdaptiveHistogram",
    "DEFAULT_MIN_COUNT",
    "DEFAULT_SPLIT_THRESHOLD",
    "DensityEstimationResult",
    "FixedHistogram",
    "HIT_RECORD_BYTES",
    "density_phase_speedup",
    "run_density_estimation",
    "HistogramBin",
    "IntegrationResult",
    "RunningMeanVar",
    "expected_value",
    "hit_or_miss_area",
    "integrate_importance",
    "integrate_uniform",
    "l1_density_error",
    "normal_approximation_valid",
    "should_split",
    "split_statistic",
]
