"""One-dimensional adaptive histogramming (Figures 3.2, 3.4, 3.5).

This is the pedagogical ancestor of Photon's 4-D bins: start with one
interval, track how many samples land in each half, and split when the
halves are statistically different.  Refinement then concentrates where
the sampled density has steep gradient, bounding storage while improving
accuracy exactly where it is needed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Optional

from .stats import DEFAULT_MIN_COUNT, DEFAULT_SPLIT_THRESHOLD, should_split

__all__ = ["AdaptiveHistogram", "FixedHistogram", "HistogramBin"]


class HistogramBin:
    """A leaf-or-internal node of the adaptive histogram's binary tree."""

    __slots__ = ("lo", "hi", "count", "left_count", "left", "right", "depth")

    def __init__(self, lo: float, hi: float, depth: int = 0) -> None:
        self.lo = lo
        self.hi = hi
        self.count = 0  # samples tallied while this node was a leaf
        self.left_count = 0  # speculative: of those, how many in [lo, mid)
        self.left: Optional["HistogramBin"] = None
        self.right: Optional["HistogramBin"] = None
        self.depth = depth

    @property
    def is_leaf(self) -> bool:
        return self.left is None

    @property
    def mid(self) -> float:
        return 0.5 * (self.lo + self.hi)

    @property
    def width(self) -> float:
        return self.hi - self.lo


@dataclass(frozen=True)
class _LeafView:
    lo: float
    hi: float
    count: int
    depth: int


class AdaptiveHistogram:
    """Adaptive 1-D histogram over ``[lo, hi)``.

    Args:
        lo / hi: Domain of the sampled variable.
        threshold: Split criterion in standard deviations (default 3).
        min_count: Samples required in a leaf before testing the split.
        max_depth: Refinement cap (width halves per level).
        max_bins: Hard cap on leaf count; further splits are refused.
    """

    def __init__(
        self,
        lo: float,
        hi: float,
        *,
        threshold: float = DEFAULT_SPLIT_THRESHOLD,
        min_count: int = DEFAULT_MIN_COUNT,
        max_depth: int = 32,
        max_bins: int = 1 << 20,
    ) -> None:
        if not lo < hi:
            raise ValueError(f"need lo < hi, got [{lo}, {hi})")
        self.root = HistogramBin(lo, hi)
        self.threshold = threshold
        self.min_count = min_count
        self.max_depth = max_depth
        self.max_bins = max_bins
        self.total = 0
        self.leaf_count = 1
        self.splits = 0

    # -- insertion ---------------------------------------------------------------

    def add(self, x: float) -> None:
        """Tally one sample; may trigger a split of the containing leaf."""
        root = self.root
        if not root.lo <= x < root.hi:
            raise ValueError(f"sample {x} outside domain [{root.lo}, {root.hi})")
        self.total += 1
        node = root
        while not node.is_leaf:
            node = node.left if x < node.mid else node.right  # type: ignore[assignment]
        node.count += 1
        if x < node.mid:
            node.left_count += 1
        self._maybe_split(node)

    def add_many(self, xs: Iterable[float]) -> None:
        """Tally every sample in *xs*."""
        for x in xs:
            self.add(x)

    def _maybe_split(self, node: HistogramBin) -> None:
        if node.depth >= self.max_depth or self.leaf_count >= self.max_bins:
            return
        left = node.left_count
        right = node.count - node.left_count
        if should_split(
            left, right, threshold=self.threshold, min_count=self.min_count
        ):
            mid = node.mid
            node.left = HistogramBin(node.lo, mid, node.depth + 1)
            node.right = HistogramBin(mid, node.hi, node.depth + 1)
            # Daughters inherit the speculative tallies so density queries
            # remain consistent; their own left_count restarts at a uniform
            # prior (half of the inherited count) as the halves' interior
            # distribution is unknown.
            node.left.count = left
            node.left.left_count = left // 2
            node.right.count = right
            node.right.left_count = right // 2
            self.leaf_count += 1
            self.splits += 1

    # -- queries -------------------------------------------------------------------

    def leaf_for(self, x: float) -> HistogramBin:
        """The leaf bin containing *x*."""
        node = self.root
        if not node.lo <= x < node.hi:
            raise ValueError(f"query {x} outside domain")
        while not node.is_leaf:
            node = node.left if x < node.mid else node.right  # type: ignore[assignment]
        return node

    def density(self, x: float) -> float:
        """Estimated probability density at *x* (count / (total * width))."""
        if self.total == 0:
            return 0.0
        leaf = self.leaf_for(x)
        return leaf.count / (self.total * leaf.width)

    def leaves(self) -> list[_LeafView]:
        """All leaves left-to-right as immutable views."""
        out: list[_LeafView] = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                out.append(_LeafView(node.lo, node.hi, node.count, node.depth))
            else:
                stack.append(node.right)  # type: ignore[arg-type]
                stack.append(node.left)  # type: ignore[arg-type]
        out.sort(key=lambda leaf: leaf.lo)
        return out

    def min_leaf_width(self) -> float:
        """Width of the finest leaf (refinement depth proxy)."""
        return min(leaf.hi - leaf.lo for leaf in self.leaves())

    def __len__(self) -> int:
        return self.leaf_count


class FixedHistogram:
    """Uniform-width histogram, the baseline the adaptive scheme improves on."""

    def __init__(self, lo: float, hi: float, bins: int) -> None:
        if bins < 1:
            raise ValueError("need at least one bin")
        if not lo < hi:
            raise ValueError(f"need lo < hi, got [{lo}, {hi})")
        self.lo = lo
        self.hi = hi
        self.bins = bins
        self.counts = [0] * bins
        self.total = 0
        self._scale = bins / (hi - lo)

    def add(self, x: float) -> None:
        """Tally one sample into its fixed-width bin."""
        if not self.lo <= x < self.hi:
            raise ValueError(f"sample {x} outside domain")
        idx = int((x - self.lo) * self._scale)
        if idx == self.bins:  # floating round-up at the top edge
            idx -= 1
        self.counts[idx] += 1
        self.total += 1

    def add_many(self, xs: Iterable[float]) -> None:
        """Tally every sample in *xs*."""
        for x in xs:
            self.add(x)

    def density(self, x: float) -> float:
        """Estimated density at *x* (count / (total * width))."""
        if self.total == 0:
            return 0.0
        idx = min(int((x - self.lo) * self._scale), self.bins - 1)
        width = (self.hi - self.lo) / self.bins
        return self.counts[idx] / (self.total * width)


def l1_density_error(
    hist: AdaptiveHistogram | FixedHistogram,
    true_pdf: Callable[[float], float],
    samples: int = 2048,
) -> float:
    """Mean |estimated - true| density over a uniform grid (test metric)."""
    if isinstance(hist, AdaptiveHistogram):
        lo, hi = hist.root.lo, hist.root.hi
    else:
        lo, hi = hist.lo, hist.hi
    step = (hi - lo) / samples
    err = 0.0
    for i in range(samples):
        x = lo + (i + 0.5) * step
        err += abs(hist.density(x) - true_pdf(x))
    return err / samples


__all__ += ["l1_density_error"]
