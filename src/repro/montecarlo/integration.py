"""Monte Carlo integration primitives (chapter 3 background).

These utilities implement the two estimator families the dissertation
distinguishes: *Monte Carlo integration*, where random variates estimate a
definite integral but never steer control flow, and *hit-or-miss
simulation*, where the random process itself is the model.  They back the
chapter-3 tests and the BRDF normalisation checks in the reflection
module.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Optional

from ..rng import Lcg48
from .stats import RunningMeanVar

__all__ = [
    "IntegrationResult",
    "integrate_uniform",
    "integrate_importance",
    "hit_or_miss_area",
    "expected_value",
]


@dataclass(frozen=True)
class IntegrationResult:
    """Estimate with its standard error and sample count."""

    value: float
    standard_error: float
    samples: int

    def within(self, truth: float, sigmas: float = 4.0) -> bool:
        """True when *truth* lies within *sigmas* standard errors."""
        if self.standard_error == 0.0:
            return self.value == truth
        return abs(self.value - truth) <= sigmas * self.standard_error


def integrate_uniform(
    f: Callable[[float], float],
    lo: float,
    hi: float,
    samples: int,
    rng: Optional[Lcg48] = None,
) -> IntegrationResult:
    """Estimate ``int_lo^hi f(x) dx`` with uniform sampling.

    Implements equation (3.6) with ``p(x) = 1 / (hi - lo)``.
    """
    if samples < 1:
        raise ValueError("need at least one sample")
    if not lo < hi:
        raise ValueError("need lo < hi")
    rng = rng or Lcg48()
    width = hi - lo
    acc = RunningMeanVar()
    for _ in range(samples):
        x = lo + rng.uniform() * width
        acc.add(f(x) * width)
    return IntegrationResult(acc.mean, acc.standard_error(), samples)


def integrate_importance(
    f: Callable[[float], float],
    sampler: Callable[[Lcg48], float],
    pdf: Callable[[float], float],
    samples: int,
    rng: Optional[Lcg48] = None,
) -> IntegrationResult:
    """Importance-sampled estimate ``E[f(X)/p(X)]``, eq. (3.6).

    Args:
        sampler: Draws X ~ pdf using the provided stream.
        pdf: Density of the sampler; must be strictly positive wherever
            *f* is nonzero (eq. 3.1 guarantees no division by zero, but a
            tiny pdf amplifies roundoff — the caveat the paper notes).
    """
    if samples < 1:
        raise ValueError("need at least one sample")
    rng = rng or Lcg48()
    acc = RunningMeanVar()
    for _ in range(samples):
        x = sampler(rng)
        p = pdf(x)
        if p <= 0.0:
            raise ValueError(f"sampler produced x={x} where pdf={p} <= 0")
        acc.add(f(x) / p)
    return IntegrationResult(acc.mean, acc.standard_error(), samples)


def hit_or_miss_area(
    f: Callable[[float], float],
    lo: float,
    hi: float,
    f_max: float,
    samples: int,
    rng: Optional[Lcg48] = None,
) -> IntegrationResult:
    """Hit-or-miss estimate of the area under non-negative *f*.

    The chapter-3 simulation picture: throw points into the bounding
    rectangle, count those under the curve.  The binomial standard error
    follows from the hit fraction.
    """
    if samples < 1:
        raise ValueError("need at least one sample")
    if f_max <= 0.0:
        raise ValueError("f_max must be positive")
    rng = rng or Lcg48()
    width = hi - lo
    hits = 0
    for _ in range(samples):
        x = lo + rng.uniform() * width
        y = rng.uniform() * f_max
        if y <= f(x):
            hits += 1
    p = hits / samples
    box = width * f_max
    stderr = box * math.sqrt(max(p * (1.0 - p), 0.0) / samples)
    return IntegrationResult(box * p, stderr, samples)


def expected_value(
    f: Callable[[float], float],
    sampler: Callable[[Lcg48], float],
    samples: int,
    rng: Optional[Lcg48] = None,
) -> IntegrationResult:
    """Plain ``E[f(X)]`` under the sampler's distribution (eq. 3.5)."""
    if samples < 1:
        raise ValueError("need at least one sample")
    rng = rng or Lcg48()
    acc = RunningMeanVar()
    for _ in range(samples):
        acc.add(f(sampler(rng)))
    return IntegrationResult(acc.mean, acc.standard_error(), samples)
