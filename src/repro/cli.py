"""Command-line interface: the simulate/view split as shell commands.

The paper's architecture separates the simulation program from the
viewing program, communicating through an answer file; the CLI exposes
exactly that workflow::

    python -m repro scenes
    python -m repro simulate cornell-box --photons 50000 --out cornell.answer.json
    python -m repro view cornell-box cornell.answer.json --out cornell.ppm
    python -m repro trace cornell-box --platform sp2 --ranks 1 2 4 8
    python -m repro serve --scene cornell-box --scene gen:office-8@0xBEEF

Scenes are *specs*, not just registered names: ``--scene-file my.json``
(or ``file:my.json`` anywhere a scene name is accepted) loads the JSON
schema / OBJ subset, and ``--gen office-64@7`` (or ``gen:office-64@7``)
builds a seeded procedural scene; ``save-scene`` writes any spec back
out as a schema file.
"""

from __future__ import annotations

import argparse
import asyncio
import math
import sys
import time
from pathlib import Path
from typing import Optional, Sequence

from .analysis.cliargs import add_lint_arguments
from .api import (
    RenderSession,
    SessionOptions,
    SimulateRequest,
    merge_config,
)
from .cluster import platform_by_name, trace_family
from .core import Camera, SplitPolicy, load_answer, save_answer
from .geometry import Vec3
from .image import save_radiance_ppm
from .perf import ascii_traces, format_table, speedup_table
from .scenes import SceneFormatError, get_scene, scene_registry
from .scenes.loader import save_scene

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The argparse command tree (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Photon global illumination (Snell 1997 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("scenes", help="list the registered test scenes")

    p_sim = sub.add_parser(
        "simulate",
        help="run the Photon simulation stage",
        description=(
            "Engines: 'scalar' is the per-photon reference loop; 'vector' "
            "traces photons in NumPy batches (several times faster, "
            "bit-identical answers under --rng substream) and with "
            "--workers N shards batches across a process pool for "
            "multi-core speedup."
        ),
    )
    p_sim.add_argument(
        "scene",
        nargs="?",
        help=(
            "scene spec: a registered name, 'file:<path>', or "
            "'gen:<kind>-<units>[@seed]' (or use --scene-file / --gen)"
        ),
    )
    p_sim.add_argument(
        "--scene-file",
        type=Path,
        help="load the scene from a photon-scene JSON (or OBJ subset) file",
    )
    p_sim.add_argument(
        "--gen",
        metavar="SPEC",
        help=(
            "generate a seeded procedural scene, e.g. 'office-64' or "
            "'den-48@7' (deterministic: same spec, same scene, same answer)"
        ),
    )
    p_sim.add_argument("--photons", type=int, default=20_000)
    p_sim.add_argument("--seed", type=lambda v: int(v, 0), default=0x1234ABCD330E)
    p_sim.add_argument("--sigma", type=float, default=3.0, help="bin split threshold")
    p_sim.add_argument(
        "--engine",
        choices=("scalar", "vector"),
        default="scalar",
        help="tracing engine (vector = NumPy batch engine)",
    )
    p_sim.add_argument(
        "--rng",
        choices=("auto", "stream", "substream"),
        default="auto",
        help=(
            "RNG discipline: one serial stream (historical scalar "
            "behaviour) or per-photon substreams (engine-independent "
            "answers); auto picks stream for scalar, substream for vector"
        ),
    )
    p_sim.add_argument(
        "--accel",
        choices=("auto", "flat", "octree", "linear"),
        default="auto",
        help=(
            "vector-engine intersection accelerator: flat = array-encoded "
            "octree batch walk (fastest on large scenes), octree = per-leaf "
            "pruned loop, linear = dense scan; answers are identical in "
            "every mode"
        ),
    )
    p_sim.add_argument(
        "--workers",
        type=int,
        default=1,
        help="process count for the vector engine (>1 uses a multiprocessing pool)",
    )
    p_sim.add_argument(
        "--share-plane",
        choices=("auto", "on", "off"),
        default="auto",
        help=(
            "scene transport for --workers > 1: 'on' publishes the compiled "
            "scene into a zero-copy shared-memory plane that workers attach, "
            "'off' pickles it to every worker, 'auto' picks the plane on "
            "large scenes when the platform supports it; answers are "
            "byte-identical either way"
        ),
    )
    p_sim.add_argument(
        "--result-plane",
        choices=("auto", "on", "off"),
        default="auto",
        help=(
            "event return transport for --workers > 1: 'on' has workers "
            "write tally events into preallocated shared-memory result "
            "blocks and return tiny descriptors, 'off' pickles the events "
            "back, 'auto' uses blocks whenever the platform has shared "
            "memory; answers are byte-identical either way"
        ),
    )
    p_sim.add_argument(
        "--batch-size",
        type=int,
        default=4096,
        help="photons per vector batch",
    )
    p_sim.add_argument(
        "--target-error",
        type=float,
        default=None,
        metavar="REL",
        help=(
            "convergence target: stop tracing once the forest's median "
            "per-bin relative error reaches REL; the answer file is the "
            "exact canonical answer for the photons actually traced (a "
            "prefix of --photons, never an approximation)"
        ),
    )
    p_sim.add_argument(
        "--amortize",
        action="store_true",
        help=(
            "enable the program-level forest cache: with --repeat, "
            "repeated requests reuse already-traced photons exactly "
            "(byte-identical answers) and a final `saved:` line reports "
            "the photons the cache avoided retracing"
        ),
    )
    p_sim.add_argument(
        "--repeat",
        type=int,
        default=1,
        help=(
            "serve the request N times on one warm RenderSession and print "
            "per-request timings: request #1 pays scene compile / plane "
            "publish / worker spawn, every later request pays tracing only "
            "(the session-reuse demonstration)"
        ),
    )
    p_sim.add_argument("--out", type=Path, required=True, help="answer file path")

    p_view = sub.add_parser("view", help="render a viewpoint from an answer file")
    p_view.add_argument("scene", help="scene the answer was computed for")
    p_view.add_argument("answer", type=Path, help="answer file from `simulate`")
    p_view.add_argument("--out", type=Path, required=True, help="PPM output path")
    p_view.add_argument("--width", type=int, default=320)
    p_view.add_argument("--height", type=int, default=240)
    p_view.add_argument("--eye", type=float, nargs=3, metavar=("X", "Y", "Z"))
    p_view.add_argument("--look-at", type=float, nargs=3, metavar=("X", "Y", "Z"))
    p_view.add_argument("--fov", type=float, default=None)

    p_trace = sub.add_parser(
        "trace", help="print a platform model's speed trace for a scene"
    )
    p_trace.add_argument("scene")
    p_trace.add_argument(
        "--platform", default="sp2", help="power-onyx | indy-cluster | sp2"
    )
    p_trace.add_argument("--ranks", type=int, nargs="+", default=[1, 2, 4, 8])
    p_trace.add_argument("--duration", type=float, default=320.0)
    p_trace.add_argument("--read-at", type=float, default=250.0)
    p_trace.add_argument(
        "--engine",
        choices=("scalar", "vector"),
        default="scalar",
        help="engine used for the calibration profile",
    )
    p_trace.add_argument(
        "--accel",
        choices=("auto", "flat", "octree", "linear"),
        default="auto",
        help=(
            "intersection accelerator for the vector calibration profile "
            "(ignored by --engine scalar, which always walks the pointer "
            "octree)"
        ),
    )

    p_save = sub.add_parser(
        "save-scene",
        help="resolve a scene spec and write it as a photon-scene JSON file",
        description=(
            "Resolves any scene spec — a registered name, file:<path>, or "
            "gen:<kind>-<units>[@seed] — and writes it back out in the "
            "versioned JSON schema.  save -> load -> save is byte-stable, "
            "and generated scenes record their generator metadata, so the "
            "written file is a self-contained, reproducible scene "
            "description."
        ),
    )
    p_save.add_argument("scene", help="scene spec to resolve")
    p_save.add_argument("--out", type=Path, required=True, help="output JSON path")

    p_serve = sub.add_parser(
        "serve",
        help="run the multi-tenant HTTP render service",
        description=(
            "Hosts every --scene spec behind a stdlib-asyncio HTTP front "
            "end: POST /scenes/<spec>/simulate returns the canonical "
            "answer JSON byte-identical to the `simulate` answer file, "
            "?stream=1 streams chunked NDJSON progress whose final line "
            "is that same answer, GET /healthz and /stats report "
            "liveness and residency/admission counters.  Programs are "
            "LRU-evicted under --max-programs/--max-bytes; each scene "
            "serves from a bounded pool of warm sessions with a bounded "
            "wait queue (429 when full) and per-request deadlines (504).  "
            "SIGTERM/SIGINT shut down gracefully, unlinking every "
            "shared-memory segment."
        ),
    )
    p_serve.add_argument(
        "--scene",
        action="append",
        default=[],
        metavar="SPEC",
        help=(
            "a scene spec to serve (repeatable): a registered name, "
            "'file:<path>', or 'gen:<kind>-<units>[@seed]'; requests for "
            "specs not listed here are refused with 404"
        ),
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument(
        "--port",
        type=int,
        default=0,
        help="bind port; 0 picks an ephemeral port (printed at startup)",
    )
    p_serve.add_argument(
        "--max-programs",
        type=int,
        default=4,
        help="resident compiled-program budget (LRU eviction above it)",
    )
    p_serve.add_argument(
        "--max-bytes",
        type=int,
        default=None,
        help="optional resident compiled-array byte budget",
    )
    p_serve.add_argument(
        "--pool-size",
        type=int,
        default=2,
        help="warm sessions per resident scene",
    )
    p_serve.add_argument(
        "--queue-limit",
        type=int,
        default=8,
        help="per-scene admission queue bound; the next request gets 429",
    )
    p_serve.add_argument(
        "--deadline",
        type=float,
        default=30.0,
        help="default per-request deadline in seconds (body may override)",
    )
    p_serve.add_argument(
        "--engine",
        choices=("scalar", "vector"),
        default="vector",
        help="engine pooled sessions trace with (default: vector)",
    )
    p_serve.add_argument(
        "--accel",
        choices=("auto", "flat", "octree", "linear"),
        default="auto",
    )
    p_serve.add_argument(
        "--workers",
        type=int,
        default=1,
        help="process count per session's vector engine",
    )
    p_serve.add_argument("--batch-size", type=int, default=4096)
    p_serve.add_argument(
        "--share-plane", choices=("auto", "on", "off"), default="auto"
    )
    p_serve.add_argument(
        "--result-plane", choices=("auto", "on", "off"), default="auto"
    )
    p_serve.add_argument(
        "--amortize",
        choices=("on", "off"),
        default="on",
        help=(
            "cross-request amortization: cache traced forests per scene "
            "so a larger-budget request tops up a cached smaller run "
            "(byte-identical to a cold trace) and camera-only renders "
            "skip tracing entirely (default: on)"
        ),
    )
    p_serve.add_argument(
        "--cache-results",
        choices=("on", "off"),
        default="on",
        help=(
            "memoize whole answers keyed by request, shared across the "
            "scene's session pool (default: on)"
        ),
    )

    p_lint = sub.add_parser(
        "lint",
        help="run the determinism & lifecycle static-analysis suite",
        description=(
            "AST checks for the repo's load-bearing contracts: "
            "determinism hygiene in canonical modules (det-*), "
            "shared-memory segment lifecycle pairing (shm-*), blocking "
            "calls in async code (async-*), and API-surface drift "
            "(api-*, hyg-*).  Exit 0 = clean, 1 = findings, 2 = usage "
            "or parse error.  Config lives in [tool.repro.lint] in "
            "pyproject.toml; suppress single findings with "
            "'# repro: allow[rule-id]' pragmas or the baseline file."
        ),
    )
    add_lint_arguments(p_lint)

    # Usage errors discovered after parsing (config validation) should
    # show the offending subcommand's synopsis, not the root command
    # list — keep a handle on the subparser for the error path.
    parser.simulate_parser = p_sim
    parser.serve_parser = p_serve
    parser.lint_parser = p_lint
    return parser


def _resolve_scene(spec: str, parser: argparse.ArgumentParser):
    """Scene spec -> Scene, reporting failures the argparse way.

    A missing file, a schema violation, or a bad generator spec is a
    usage error (exit 2 with the offending path/field named), not a
    traceback.  Unknown registered names keep raising ``KeyError`` —
    the long-standing programmatic contract of ``build_scene``.
    """
    try:
        return get_scene(spec)
    except (SceneFormatError, ValueError) as exc:
        parser.error(str(exc))


def _simulate_scene_spec(args, parser: argparse.ArgumentParser) -> str:
    """The one scene spec of a simulate invocation (positional or flag)."""
    specs = [
        spec
        for spec in (
            args.scene,
            f"file:{args.scene_file}" if args.scene_file else None,
            f"gen:{args.gen}" if args.gen else None,
        )
        if spec
    ]
    if len(specs) != 1:
        parser.simulate_parser.error(
            "pass exactly one scene: a positional spec, --scene-file, or --gen"
        )
    return specs[0]


def _cmd_scenes(out) -> int:
    rows = []
    for name, builder in scene_registry().items():
        scene = builder()
        rows.append(
            [name, scene.defining_polygon_count, len(scene.luminaires)]
        )
    print(format_table(["scene", "defining polygons", "luminaires"], rows), file=out)
    return 0


def _cmd_simulate(args, out, parser: argparse.ArgumentParser) -> int:
    scene = _resolve_scene(_simulate_scene_spec(args, parser), parser)
    try:
        request = SimulateRequest(
            n_photons=args.photons,
            seed=args.seed,
            policy=SplitPolicy(threshold=args.sigma),
            rng_mode=args.rng,
            target_rel_error=args.target_error,
        )
        options = SessionOptions(
            engine=args.engine,
            accel=args.accel,
            workers=args.workers,
            batch_size=args.batch_size,
            share_plane=args.share_plane,
            result_plane=args.result_plane,
            amortize=args.amortize,
        )
        # Cross-field validation (vector forbids stream RNG, ...) lives
        # in the merged config; run it before provisioning anything.
        merge_config(request, options)
        if args.repeat < 1:
            raise ValueError("--repeat must be at least 1")
    except ValueError as exc:
        # Flag combinations the request/options split rejects (e.g.
        # --workers without the vector engine) are usage errors, not
        # tracebacks: report them the argparse way (usage line +
        # message, exit code 2), against the simulate subparser so the
        # synopsis actually shows the flags the message talks about.
        hint = ""
        if "requires the vector engine" in str(exc):
            hint = " (hint: pass --engine vector to use --workers)"
        parser.simulate_parser.error(f"{exc}{hint}")
    engine_label = options.engine
    if options.engine == "vector" and options.workers > 1:
        engine_label = f"vector x{options.workers} procs"
    with RenderSession(scene, options) as session:
        warm_seconds = 0.0
        total_seconds = 0.0
        for i in range(args.repeat):
            t0 = time.perf_counter()
            result = session.simulate(request)
            dt = time.perf_counter() - t0
            total_seconds += dt
            if i > 0:
                warm_seconds += dt
            if args.repeat > 1:
                phase = "cold: compile+publish+spawn" if i == 0 else "warm"
                print(
                    f"request {i + 1}/{args.repeat}: {args.photons:,} "
                    f"photons in {dt:.2f}s "
                    f"({args.photons / max(dt, 1e-9):,.0f}/s, {phase})",
                    file=out,
                )
        if args.repeat > 1:
            # The serving number a warm session is provisioned for: the
            # aggregate rate across every request, plus the warm-only
            # rate that excludes request #1's one-time provisioning.
            total_photons = args.photons * args.repeat
            warm_photons = args.photons * (args.repeat - 1)
            print(
                f"aggregate: {args.repeat} requests, {total_photons:,} "
                f"photons in {total_seconds:.2f}s "
                f"({total_photons / max(total_seconds, 1e-9):,.0f}/s overall, "
                f"{warm_photons / max(warm_seconds, 1e-9):,.0f}/s warm)",
                file=out,
            )
        if args.amortize:
            amort = session.program.amortize_stats()
            if amort["photons_saved"] > 0:
                print(
                    f"saved: {amort['photons_saved']:,} photons reused from "
                    f"the forest cache ({amort['exact_hits']} exact hits, "
                    f"{amort['topups']} top-ups)",
                    file=out,
                )
    if result.early_stopped:
        achieved = result.achieved_rel_error
        label = (
            f"{achieved:.4g}"
            if achieved is not None and math.isfinite(achieved)
            else "inf"
        )
        print(
            f"early stop: target {args.target_error:g} reached after "
            f"{result.config.n_photons:,} of {args.photons:,} photons "
            f"(achieved {label})",
            file=out,
        )
    result.forest.check_invariants()
    save_answer(result.forest, args.out)
    photons_done = result.config.n_photons
    print(
        f"{photons_done:,} photons in {dt:.1f}s "
        f"({photons_done / max(dt, 1e-9):,.0f}/s, {engine_label}); "
        f"{result.forest.leaf_count:,} bins; "
        f"answer -> {args.out}",
        file=out,
    )
    return 0


def _cmd_view(args, out, parser: argparse.ArgumentParser) -> int:
    scene = _resolve_scene(args.scene, parser)
    forest = load_answer(args.answer)
    # Viewing defaults travel with the scene (Scene.default_camera), so
    # newly registered scenes frame themselves instead of inheriting a
    # hardcoded fallback viewpoint.
    defaults = scene.default_camera
    position = Vec3(*args.eye) if args.eye else defaults["position"]
    look_at = Vec3(*args.look_at) if args.look_at else defaults["look_at"]
    fov = args.fov if args.fov is not None else defaults.get(
        "vertical_fov_degrees", 55.0
    )
    camera = Camera(
        position=position,
        look_at=look_at,
        vertical_fov_degrees=fov,
        width=args.width,
        height=args.height,
    )
    t0 = time.perf_counter()
    with RenderSession(scene) as session:
        image = session.render(forest, camera)
    save_radiance_ppm(image, args.out)
    print(
        f"rendered {args.width}x{args.height} in "
        f"{time.perf_counter() - t0:.1f}s -> {args.out}",
        file=out,
    )
    return 0


def _cmd_save_scene(args, out, parser: argparse.ArgumentParser) -> int:
    scene = _resolve_scene(args.scene, parser)
    save_scene(scene, args.out)
    print(
        f"{scene.name}: {scene.defining_polygon_count:,} patches, "
        f"{len(scene.luminaires)} luminaires -> {args.out}",
        file=out,
    )
    return 0


def _cmd_trace(args, out, parser: argparse.ArgumentParser) -> int:
    machine = platform_by_name(args.platform)
    scene = _resolve_scene(args.scene, parser)
    with RenderSession(
        scene, SessionOptions(engine=args.engine, accel=args.accel)
    ) as session:
        profile = session.profile(photons=250)
    family = trace_family(
        machine, profile, sorted(set(args.ranks)), duration_s=args.duration
    )
    print(ascii_traces(family, title=f"{machine.name} / {scene.name}"), file=out)
    if 1 in family:
        table = speedup_table(family, at_time=args.read_at)
        print(
            format_table(
                ["processors", f"speedup@{args.read_at:.0f}s"],
                [[r, f"{s:.2f}"] for r, s in sorted(table.speedups.items())],
            ),
            file=out,
        )
    return 0


async def _serve_main(config, out) -> None:
    """Start the service, print readiness, park until SIGTERM/SIGINT."""
    import signal

    from .service import RenderService

    service = RenderService(config)
    await service.start()
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    installed = []
    for sig in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(sig, stop.set)
            installed.append(sig)
        except NotImplementedError:  # pragma: no cover — non-Unix loop
            pass
    print(
        f"serving {len(config.scenes)} scene(s): "
        + ", ".join(config.scenes),
        file=out,
        flush=True,
    )
    # The readiness line: scripts (and the CI smoke job) wait for it,
    # then parse the bound port out of it when --port 0 was used.
    print(
        f"listening on http://{service.host}:{service.port}",
        file=out,
        flush=True,
    )
    try:
        await stop.wait()
    finally:
        for sig in installed:
            loop.remove_signal_handler(sig)
        print("shutting down: draining sessions ...", file=out, flush=True)
        await service.close()
        print("bye", file=out, flush=True)


def _cmd_serve(args, out, parser: argparse.ArgumentParser) -> int:
    from .service import ServiceConfig

    if not args.scene:
        parser.serve_parser.error(
            "pass at least one --scene spec (repeatable)"
        )
    try:
        options = SessionOptions(
            engine=args.engine,
            accel=args.accel,
            workers=args.workers,
            batch_size=args.batch_size,
            share_plane=args.share_plane,
            result_plane=args.result_plane,
            amortize=args.amortize == "on",
            cache_results=args.cache_results == "on",
        )
        config = ServiceConfig(
            scenes=tuple(args.scene),
            host=args.host,
            port=args.port,
            max_programs=args.max_programs,
            max_bytes=args.max_bytes,
            sessions_per_scene=args.pool_size,
            queue_limit=args.queue_limit,
            default_deadline=args.deadline,
            options=options,
        )
    except ValueError as exc:
        parser.serve_parser.error(str(exc))
    try:
        asyncio.run(_serve_main(config, out))
    except ValueError as exc:
        # Bad scene specs are discovered by RenderService.start() (the
        # generators / registry are the authority); report them as the
        # usage errors they are.
        parser.serve_parser.error(str(exc))
    except KeyboardInterrupt:  # pragma: no cover — belt for odd loops
        pass
    return 0


def _cmd_lint(args, out, parser: argparse.ArgumentParser) -> int:
    # Lazy import: the analysis engine is pure stdlib, but keeping it
    # off the hot CLI paths mirrors how `serve` loads its tier.
    from .analysis.engine import run as run_lint

    return run_lint(
        args.paths,
        out=out,
        fmt=args.format,
        rules=args.rule or None,
        extra_exclude=args.exclude,
        baseline=args.baseline,
        no_baseline=args.no_baseline,
        write_baseline_to=args.write_baseline,
        error=parser.lint_parser.error,
    )


def main(argv: Optional[Sequence[str]] = None, out=None) -> int:
    """CLI entry point; returns a process exit code."""
    out = out or sys.stdout
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "scenes":
        return _cmd_scenes(out)
    if args.command == "simulate":
        return _cmd_simulate(args, out, parser)
    if args.command == "view":
        return _cmd_view(args, out, parser)
    if args.command == "trace":
        return _cmd_trace(args, out, parser)
    if args.command == "save-scene":
        return _cmd_save_scene(args, out, parser)
    if args.command == "serve":
        return _cmd_serve(args, out, parser)
    if args.command == "lint":
        return _cmd_lint(args, out, parser)
    raise AssertionError(f"unhandled command {args.command!r}")
