"""Performance analysis: speedup extraction, laws, report rendering."""

from .laws import (
    amdahl_speedup,
    gustafson_speedup,
    karp_flatt_metric,
    serial_fraction_from_speedup,
)
from .report import ascii_traces, format_table, graph_of_graphs
from .speedup import (
    SpeedupTable,
    fixed_size_speedup,
    fixed_time_speedup,
    speedup_table,
)

__all__ = [
    "SpeedupTable",
    "amdahl_speedup",
    "ascii_traces",
    "fixed_size_speedup",
    "fixed_time_speedup",
    "format_table",
    "graph_of_graphs",
    "gustafson_speedup",
    "karp_flatt_metric",
    "serial_fraction_from_speedup",
    "speedup_table",
]
