"""Speedup extraction from execution traces.

Chapter 5 defines speedup against "the best serial version of the
program (not the parallel version run on one processor)", read off the
speed-vs-time traces at a chosen instant (fixed-time speedup) or over a
fixed photon budget (fixed-size speedup).  Both readings are implemented
here against :class:`repro.cluster.runner.SpeedTrace` objects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from ..cluster.runner import SpeedTrace

__all__ = [
    "fixed_time_speedup",
    "fixed_size_speedup",
    "SpeedupTable",
    "speedup_table",
]


def fixed_time_speedup(
    parallel: SpeedTrace, serial: SpeedTrace, at_time: float
) -> float:
    """Rate ratio parallel/serial at simulated time *at_time*.

    Returns 0.0 when the parallel trace has not produced its first
    sample yet (startup still in progress — the Indy cluster's shifted
    traces really do read as zero speedup early on).
    """
    if at_time <= 0:
        raise ValueError("at_time must be positive")
    serial_rate = serial.rate_at(at_time)
    if serial_rate <= 0.0:
        # Before the serial code's own first batch: compare final rates
        # to avoid division by zero on absurdly small times.
        serial_rate = serial.samples[0].rate if serial.samples else 0.0
    if serial_rate <= 0.0:
        raise ValueError("serial trace is empty")
    return parallel.rate_at(at_time) / serial_rate


def _time_to_photons(trace: SpeedTrace, photons: int) -> float:
    """Simulated seconds until *photons* photons are complete (inf if never)."""
    for sample in trace.samples:
        if sample.cumulative_photons >= photons:
            return sample.time
    return float("inf")


def fixed_size_speedup(
    parallel: SpeedTrace, serial: SpeedTrace, photons: int
) -> float:
    """Time ratio serial/parallel to finish *photons* photons."""
    if photons <= 0:
        raise ValueError("photons must be positive")
    t_serial = _time_to_photons(serial, photons)
    t_parallel = _time_to_photons(parallel, photons)
    if t_serial == float("inf") or t_parallel == float("inf"):
        raise ValueError(
            "traces too short for the requested photon budget; extend duration_s"
        )
    return t_serial / t_parallel


@dataclass(frozen=True)
class SpeedupTable:
    """Speedups per rank count at a fixed reading point."""

    scene: str
    platform: str
    at_time: float
    speedups: Mapping[int, float]  # ranks -> speedup

    def monotone_nondecreasing(self, tolerance: float = 0.0) -> bool:
        """True when speedup never drops as ranks grow (within tolerance)."""
        ordered = sorted(self.speedups)
        return all(
            self.speedups[b] >= self.speedups[a] - tolerance
            for a, b in zip(ordered, ordered[1:])
        )


def speedup_table(
    traces: Mapping[int, SpeedTrace], at_time: float
) -> SpeedupTable:
    """Fixed-time speedups for a trace family keyed by rank count.

    The family must include ranks == 1 (the serial reference).
    """
    if 1 not in traces:
        raise ValueError("trace family must include the serial (ranks=1) trace")
    serial = traces[1]
    speedups = {
        ranks: fixed_time_speedup(trace, serial, at_time)
        for ranks, trace in traces.items()
    }
    sample = next(iter(traces.values()))
    return SpeedupTable(
        scene=sample.scene,
        platform=sample.platform,
        at_time=at_time,
        speedups=speedups,
    )
