"""ASCII rendering of the paper's performance presentations.

Two novel visualisations close chapter 5: log-log speed-vs-time traces
with a speedup scale, and the "graph of graphs" (Figure 5.15) whose
outer axes are scene complexity and processor coupling.  The benches
print terminal renderings of both so the reproduction's output can be
eyeballed against the published figures.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

from ..cluster.runner import SpeedTrace

__all__ = ["format_table", "ascii_traces", "graph_of_graphs"]

_GLYPHS = "1248abcdefg"


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Fixed-width text table with a header rule."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = []
    for idx, row in enumerate(cells):
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
        if idx == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def _log_pos(value: float, lo: float, hi: float, steps: int) -> int:
    if value <= lo:
        return 0
    if value >= hi:
        return steps - 1
    frac = (math.log10(value) - math.log10(lo)) / (math.log10(hi) - math.log10(lo))
    return min(int(frac * (steps - 1) + 0.5), steps - 1)


def ascii_traces(
    traces: Mapping[int, SpeedTrace],
    *,
    width: int = 64,
    height: int = 16,
    title: str | None = None,
) -> str:
    """Log-log speed-vs-time plot of a trace family (one published figure).

    Each rank count plots with its own glyph ('1', '2', '4', '8', then
    letters).  Axes are annotated with their data ranges.
    """
    all_samples = [s for t in traces.values() for s in t.samples]
    if not all_samples:
        raise ValueError("no samples to plot")
    t_lo = max(min(s.time for s in all_samples), 1e-6)
    t_hi = max(s.time for s in all_samples)
    r_lo = max(min(s.rate for s in all_samples), 1e-6)
    r_hi = max(s.rate for s in all_samples)
    if t_hi <= t_lo:
        t_hi = t_lo * 10
    if r_hi <= r_lo:
        r_hi = r_lo * 10

    grid = [[" "] * width for _ in range(height)]
    for idx, ranks in enumerate(sorted(traces)):
        glyph = _GLYPHS[min(idx, len(_GLYPHS) - 1)]
        for s in traces[ranks].samples:
            x = _log_pos(s.time, t_lo, t_hi, width)
            y = height - 1 - _log_pos(s.rate, r_lo, r_hi, height)
            grid[y][x] = glyph
    lines = []
    if title:
        lines.append(title)
    lines.append(f"photons/sec (log) {r_lo:.3g} .. {r_hi:.3g}")
    lines += ["|" + "".join(row) for row in grid]
    lines.append("+" + "-" * width)
    lines.append(f" time (log) {t_lo:.3g}s .. {t_hi:.3g}s   glyph = processor count")
    return "\n".join(lines)


def graph_of_graphs(
    families: Mapping[str, Mapping[str, Mapping[int, SpeedTrace]]],
    *,
    cell_width: int = 34,
    cell_height: int = 9,
) -> str:
    """Figure 5.15: a grid of trace plots, platforms x scenes.

    Args:
        families: platform name -> scene name -> trace family.  The
            outer horizontal axis (columns) is scene complexity, the
            vertical axis (rows) is processor coupling, matching the
            published layout.
    """
    platforms = list(families)
    scenes: list[str] = []
    for by_scene in families.values():
        for scene in by_scene:
            if scene not in scenes:
                scenes.append(scene)

    blocks: list[str] = []
    header = " | ".join(s.center(cell_width) for s in scenes)
    blocks.append(" " * 18 + header)
    for platform in platforms:
        row_plots = []
        for scene in scenes:
            family = families[platform].get(scene)
            if family is None:
                row_plots.append([" " * cell_width] * (cell_height + 2))
                continue
            plot = ascii_traces(
                family, width=cell_width, height=cell_height
            ).splitlines()[1:]  # drop the rate-range line for compactness
            plot = [line[: cell_width + 1].ljust(cell_width + 1) for line in plot]
            row_plots.append(plot)
        depth = max(len(p) for p in row_plots)
        for p in row_plots:
            p += [" " * (cell_width + 1)] * (depth - len(p))
        label = platform[:16].ljust(16)
        for line_idx in range(depth):
            prefix = label if line_idx == depth // 2 else " " * 16
            blocks.append(prefix + "  " + " | ".join(p[line_idx] for p in row_plots))
        blocks.append("")
    blocks.append("rows: increasing coupling cost; columns: increasing scene complexity")
    return "\n".join(blocks)
