"""Speedup laws: Amdahl's and Gustafson's models.

Chapter 5 frames its methodology around the fixed-size versus fixed-time
distinction of Gustafson's "Reevaluating Amdahl's Law" (the
dissertation's advisor).  These closed forms let the benches and README
relate measured trace speedups to the two classical models:

* **Amdahl (fixed size)** — with serial fraction f, speedup on P
  processors is bounded by ``1 / (f + (1 - f) / P)``.
* **Gustafson (fixed time / scaled)** — if the parallel part scales
  with the machine, speedup is ``P - f * (P - 1)``.

Photon's workload is the Gustafson regime almost by construction: the
photon budget grows with the machine while the serial part (load
balancing, startup) stays fixed — which is why the paper reports speed
*traces* rather than single fixed-size numbers.
"""

from __future__ import annotations

from typing import Sequence

__all__ = [
    "amdahl_speedup",
    "gustafson_speedup",
    "serial_fraction_from_speedup",
    "karp_flatt_metric",
]


def _check(f: float, processors: int) -> None:
    if not 0.0 <= f <= 1.0:
        raise ValueError(f"serial fraction must be in [0, 1], got {f}")
    if processors < 1:
        raise ValueError(f"processor count must be >= 1, got {processors}")


def amdahl_speedup(serial_fraction: float, processors: int) -> float:
    """Fixed-size speedup bound: 1 / (f + (1 - f)/P)."""
    _check(serial_fraction, processors)
    return 1.0 / (serial_fraction + (1.0 - serial_fraction) / processors)


def gustafson_speedup(serial_fraction: float, processors: int) -> float:
    """Scaled (fixed-time) speedup: P - f (P - 1)."""
    _check(serial_fraction, processors)
    return processors - serial_fraction * (processors - 1)


def serial_fraction_from_speedup(speedup: float, processors: int) -> float:
    """Invert Gustafson's law: f = (P - S) / (P - 1).

    Useful for reading an effective serial fraction off a measured
    fixed-time speedup (e.g. the SP-2 copy overhead shows up here).

    Raises:
        ValueError: for P < 2 or speedups outside (0, P].
    """
    if processors < 2:
        raise ValueError("need at least 2 processors to infer a fraction")
    if not 0.0 < speedup <= processors:
        raise ValueError(
            f"speedup must be in (0, {processors}] for {processors} processors"
        )
    return (processors - speedup) / (processors - 1)


def karp_flatt_metric(speedups: Sequence[tuple[int, float]]) -> list[float]:
    """Experimentally determined serial fraction per (P, speedup) pair.

    The Karp–Flatt metric ``e = (1/S - 1/P) / (1 - 1/P)`` diagnoses
    *why* scaling degrades: a constant e across P means a genuine serial
    fraction; a growing e means overhead growing with P (the SP-2's
    per-message buffer copies, for instance).
    """
    out = []
    for processors, speedup in speedups:
        if processors < 2:
            raise ValueError("Karp–Flatt needs P >= 2")
        if speedup <= 0:
            raise ValueError("speedup must be positive")
        out.append((1.0 / speedup - 1.0 / processors) / (1.0 - 1.0 / processors))
    return out
