#!/usr/bin/env python
"""Cluster study: run distributed Photon and regenerate the speedup story.

Combines the two halves of the reproduction:

1. a *real* distributed run (in-process MPI-style ranks) on the
   Harpsichord room, showing the Best-Fit load balance and the all-to-all
   photon exchange of Figure 5.3;
2. the era platform models (Power Onyx / Indy cluster / SP-2) replaying
   the paper's speed-vs-time traces, rendered as ASCII versions of
   Figures 5.6-5.15.

Run:
    python examples/cluster_study.py [--photons 2000] [--ranks 4]
"""

from __future__ import annotations

import argparse

from repro.cluster import (
    INDY_CLUSTER,
    POWER_ONYX,
    SP2,
    trace_family,
)
from repro.parallel import DistributedConfig, load_imbalance, run_distributed
from repro.perf import ascii_traces, format_table, graph_of_graphs, speedup_table
from repro.scenes import harpsichord_room


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--photons", type=int, default=2000)
    parser.add_argument("--ranks", type=int, default=4)
    args = parser.parse_args()

    scene = harpsichord_room()

    # ---- Real distributed run -------------------------------------------
    print(f"distributed Photon: {args.ranks} ranks, {args.photons:,} photons")
    cfg = DistributedConfig(
        n_photons=args.photons, batch_size=400, pilot_photons=1000
    )
    dist = run_distributed(scene, cfg, args.ranks)
    rows = [
        [r.rank, r.photons_emitted, r.photons_processed, r.events_forwarded, len(r.owned_units)]
        for r in dist.ranks
    ]
    print(
        format_table(
            ["rank", "emitted", "processed", "forwarded", "units owned"], rows
        )
    )
    print(
        f"load imbalance (max/mean): "
        f"{load_imbalance(dist.processed_per_rank()):.3f} with Best-Fit packing"
    )
    dist.forest.check_invariants()

    # ---- Era platform traces ---------------------------------------------
    # Calibration through the session API, on the scalar reference
    # engine (what `repro trace` defaults to, and what this example has
    # always measured the era models against).
    from repro.api import RenderSession, SessionOptions

    with RenderSession(scene, SessionOptions(engine="scalar")) as session:
        profile = session.profile(photons=250)
    print("\nscene profile:", profile)

    grid = {}
    for machine in (POWER_ONYX, SP2, INDY_CLUSTER):
        fam = trace_family(machine, profile, [1, 2, 4, 8], duration_s=320.0)
        grid[machine.name] = {"harpsichord": fam}
        table = speedup_table(fam, at_time=250.0)
        print(f"\n{machine.name} — speed trace (Harpsichord)")
        print(ascii_traces(fam))
        print(
            format_table(
                ["processors", "speedup@250s"],
                [[r, f"{s:.2f}"] for r, s in sorted(table.speedups.items())],
            )
        )

    print("\nGraph of graphs (Figure 5.15 layout, one scene column):")
    print(graph_of_graphs(grid))


if __name__ == "__main__":
    main()
