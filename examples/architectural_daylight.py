#!/usr/bin/env python
"""Architectural daylighting: the Harpsichord room's skylights.

The dissertation's motivating application is architectural rendering:
"Photon considers the sun as a source covering the scene and collimated
to a range of 0.5 degree ... This produces sharp shadows when the
occluding object is near the shadowed surface and fuzzy shadows when the
occluder is farther away."

This example simulates the Harpsichord Practice Room and measures the
penumbra width of two shadows on the floor — one cast by a nearby
occluder (a harpsichord leg) and one by the distant skylight frame — to
show the distance-dependent shadow softness that point-light renderers
(the Whitted baseline here) cannot produce.

Run:
    python examples/architectural_daylight.py [--photons 40000]
"""

from __future__ import annotations

import argparse
from pathlib import Path

from repro.api import Camera, RenderSession, SimulateRequest
from repro.core import RadianceField
from repro.geometry import Ray, Vec3
from repro.image import save_radiance_ppm
from repro.raytrace import WhittedConfig, render_whitted
from repro.scenes import HARPSICHORD_DEFAULT_CAMERA, harpsichord_room


def floor_irradiance_profile(scene, field, z: float, x_range, steps: int = 60):
    """Radiance leaving the floor straight up, sampled along a line."""
    profile = []
    x0, x1 = x_range
    for i in range(steps):
        x = x0 + (x1 - x0) * i / (steps - 1)
        hit = scene.intersect(Ray(Vec3(x, 1.0, z), Vec3(0.0, -1.0, 0.0)))
        if hit is None or hit.patch.name not in ("floor", "rug"):
            profile.append((x, 0.0))
            continue
        sample = field.sample(hit.patch.patch_id, hit.s, hit.t, Vec3(0, 1, 0))
        profile.append((x, sum(sample.rgb)))
    return profile


def edge_width(profile) -> float:
    """Width over which the profile climbs from 25% to 75% of its max."""
    values = [v for _, v in profile]
    peak = max(values)
    if peak <= 0:
        return 0.0
    lo = 0.25 * peak
    hi = 0.75 * peak
    x_lo = x_hi = None
    for x, v in profile:
        if x_lo is None and v >= lo:
            x_lo = x
        if x_hi is None and v >= hi:
            x_hi = x
    if x_lo is None or x_hi is None:
        return 0.0
    return abs(x_hi - x_lo)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--photons", type=int, default=40_000)
    parser.add_argument("--out-dir", type=Path, default=Path("."))
    args = parser.parse_args()

    scene = harpsichord_room()
    print(f"scene: {scene.name} — {scene.defining_polygon_count} defining polygons")
    print("luminaires:")
    for lum in scene.luminaires:
        kind = (
            f"collimated {lum.beam_half_angle:.4f} rad"
            if lum.beam_half_angle is not None
            else "diffuse sky"
        )
        print(f"  {lum.patch.name:20s} power {lum.power:8.1f}  {kind}")

    session = RenderSession(scene)
    with session:
        result = session.simulate(SimulateRequest(n_photons=args.photons))
        field = RadianceField(scene, result.forest)
        print(
            f"\nsimulated {args.photons:,} photons; "
            f"{result.forest.leaf_count:,} bins; mean bounces {result.stats.mean_bounces:.2f}"
        )

        # Shadow-edge study: skylight pool edge on open floor (occluder =
        # skylight frame, ~2 m above) vs the harpsichord leg's shadow
        # (occluder a few cm above the floor).
        pool_profile = floor_irradiance_profile(scene, field, z=2.0, x_range=(0.2, 2.4))
        leg_profile = floor_irradiance_profile(scene, field, z=1.7, x_range=(1.45, 1.95))
        pool_edge = edge_width(pool_profile)
        leg_edge = edge_width(leg_profile)
        print(f"\nskylight pool edge width (distant occluder): {pool_edge:.3f} m (fuzzy)")
        print(f"harpsichord leg shadow edge (near occluder):  {leg_edge:.3f} m (sharp)")

        # The scene carries its default view; Photon image via the
        # session, Whitted comparison via the baseline renderer.
        camera = Camera(width=160, height=120, **HARPSICHORD_DEFAULT_CAMERA)
        save_radiance_ppm(
            session.render(result, camera), args.out_dir / "harpsichord_photon.ppm"
        )
    save_radiance_ppm(
        render_whitted(scene, camera, WhittedConfig()),
        args.out_dir / "harpsichord_whitted.ppm",
    )
    print(
        f"\nwrote {args.out_dir / 'harpsichord_photon.ppm'} (area sun, soft shadows)"
        f"\nwrote {args.out_dir / 'harpsichord_whitted.ppm'} (point lights, hard shadows)"
    )


if __name__ == "__main__":
    main()
