#!/usr/bin/env python
"""Polarization and fluorescence: the chapter-6 extensions in action.

Two small studies on the paper's future-work features:

1. **Polarization** — trace photons with Stokes-vector transport through
   the Cornell box; light that has bounced off the mirror arrives
   partially polarized (the paper: "polarization will play a large role
   in the realism of a rendered scene"), diffusely scattered light does
   not.
2. **Fluorescence** — illuminate a black-lit poster room with a
   blue-only lamp; the fluorescent poster re-emits green, so the answer
   contains green tallies a band-accounting without fluorescence could
   never produce.

Run:
    python examples/polarization_study.py [--photons 3000]
"""

from __future__ import annotations

import argparse

from repro.api import RenderSession, SimulateRequest
from repro.core.fluorescence import FluorescenceSpec, fluorescent_reflect
from repro.core.generation import emit_photon
from repro.core.polarization import PolarizedPhoton, polarized_reflect
from repro.core.simulator import MAX_BOUNCES
from repro.geometry import Ray, Scene, Vec3, axis_rect, matte
from repro.geometry.material import Material, RGB, emitter
from repro.perf import format_table
from repro.rng import Lcg48
from repro.scenes import cornell_box


def polarization_study(photons: int) -> None:
    scene = cornell_box()
    rng = Lcg48(11)
    arrivals: dict[str, list[float]] = {}
    for _ in range(photons):
        record = emit_photon(scene, rng)
        pp = PolarizedPhoton.from_photon(record.photon)
        for _ in range(MAX_BOUNCES):
            hit = scene.intersect(
                Ray(pp.photon.position, pp.photon.direction, normalized=True)
            )
            if hit is None:
                break
            arrivals.setdefault(hit.patch.material.name, []).append(
                pp.stokes.degree_of_polarization()
            )
            out = polarized_reflect(pp, hit, rng, mirror_rs=1.0, mirror_rp=0.6)
            if out is None:
                break
            _, pp = out

    rows = []
    for name, dops in sorted(arrivals.items(), key=lambda kv: -len(kv[1])):
        rows.append([name, len(dops), f"{sum(dops) / len(dops):.3f}", f"{max(dops):.3f}"])
    print("degree of polarization of light *arriving* at each material:")
    print(format_table(["material", "arrivals", "mean DOP", "max DOP"], rows))
    print(
        "\nonly mirror-bounced light is polarized — every max-DOP > 0 row"
        " received reflections from the floating mirror.\n"
    )


def fluorescence_study(photons: int) -> None:
    # A black-lit gallery: blue-only lamp, dark walls, fluorescent poster.
    dark = matte("dark", 0.15, 0.15, 0.18)
    poster = Material(name="poster", diffuse=RGB(0.05, 0.05, 0.05))
    blue_lamp = emitter("uv-lamp", 0.0, 0.0, 12.0)
    patches = [
        axis_rect("y", 0.0, (0, 3), (0, 3), dark, name="floor", flip=True),
        axis_rect("y", 2.5, (0, 3), (0, 3), dark, name="ceiling"),
        axis_rect("x", 0.0, (0, 2.5), (0, 3), dark, name="w0"),
        axis_rect("x", 3.0, (0, 2.5), (0, 3), dark, name="w1", flip=True),
        axis_rect("z", 0.0, (0, 3), (0, 2.5), dark, name="w2"),
        axis_rect("z", 3.0, (0, 3), (0, 2.5), dark, name="w3", flip=True),
        axis_rect("y", 2.49, (1.2, 1.8), (1.2, 1.8), blue_lamp, name="lamp"),
        axis_rect("z", 0.01, (0.8, 2.2), (0.6, 1.9), poster, name="poster"),
    ]
    scene = Scene(patches, name="blacklight-gallery")
    spec = FluorescenceSpec.simple(blue_to_green=0.65)

    rng = Lcg48(23)
    band_tallies = [0, 0, 0]
    poster_glow = [0, 0, 0]
    for _ in range(photons):
        record = emit_photon(scene, rng)
        photon = record.photon
        band_tallies[photon.band] += 1
        for _ in range(MAX_BOUNCES):
            hit = scene.intersect(Ray(photon.position, photon.direction, normalized=True))
            if hit is None:
                break
            result = fluorescent_reflect(photon, hit, rng, spec)
            if result is None:
                break
            band_tallies[photon.band] += 1
            if hit.patch.name == "poster":
                poster_glow[photon.band] += 1
            photon.advance_to(hit.point, result.direction)

    print("black-light gallery (blue-only illumination):")
    print(
        format_table(
            ["band", "scene tallies", "poster departures"],
            [
                ["red", band_tallies[0], poster_glow[0]],
                ["green", band_tallies[1], poster_glow[1]],
                ["blue", band_tallies[2], poster_glow[2]],
            ],
        )
    )
    print(
        "\nall emission was blue, yet the poster departs green light: "
        "the Stokes-shift down-conversion at work."
    )

    # The same physics through the public session API: fluorescence is a
    # per-request knob, so one warm session serves both the plain and the
    # fluorescent request without recompiling the scene.
    with RenderSession(scene) as session:
        plain = session.simulate(SimulateRequest(n_photons=photons))
        fluor = session.simulate(
            SimulateRequest(n_photons=photons, fluorescence=spec)
        )
    print(
        f"\nsession check — green tallies without fluorescence: "
        f"{plain.forest.band_tallies[1]:,}; with: "
        f"{fluor.forest.band_tallies[1]:,}"
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--photons", type=int, default=3000)
    args = parser.parse_args()
    polarization_study(args.photons)
    fluorescence_study(args.photons)


if __name__ == "__main__":
    main()
