#!/usr/bin/env python
"""Virtual-reality walkthrough: many viewpoints from one answer file.

"Global illumination is key to virtual reality efforts since correct
views can be displayed quickly as the viewpoint moves."  This example
simulates the Cornell box once, then renders a camera path orbiting the
scene — timing the amortised cost per frame against what a
re-simulate-per-frame approach (any view-dependent method) would pay.

Run:
    python examples/virtual_walkthrough.py [--photons 20000] [--frames 8]
"""

from __future__ import annotations

import argparse
import math
import time
from pathlib import Path

from repro.api import Camera, RenderSession, SimulateRequest
from repro.geometry import Vec3
from repro.image import save_radiance_ppm
from repro.scenes import cornell_box


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--photons", type=int, default=20_000)
    parser.add_argument("--frames", type=int, default=8)
    parser.add_argument("--out-dir", type=Path, default=Path("."))
    parser.add_argument("--size", type=int, default=96)
    args = parser.parse_args()

    # One session serves the whole walkthrough: simulate once, then
    # answer a viewing request per frame — the paper's simulate/view
    # split as a single warm object.
    with RenderSession(cornell_box()) as session:
        t0 = time.perf_counter()
        result = session.simulate(SimulateRequest(n_photons=args.photons))
        t_sim = time.perf_counter() - t0
        print(f"one-time simulation: {t_sim:.1f}s for {args.photons:,} photons")

        # Camera path: an arc outside the open front, always looking at
        # the mirror.  Every frame reads the same answer.
        target = Vec3(1.0, 1.0, 0.55)
        t_frames = 0.0
        for frame in range(args.frames):
            angle = math.radians(-35.0 + 70.0 * frame / max(args.frames - 1, 1))
            position = Vec3(1.0 + 2.9 * math.sin(angle), 1.0 + 0.3 * math.sin(angle * 2), 2.0 + 2.0 * math.cos(angle))
            camera = Camera(
                position=position,
                look_at=target,
                width=args.size,
                height=args.size * 3 // 4,
                vertical_fov_degrees=45.0,
            )
            t0 = time.perf_counter()
            image = session.render(result, camera)
            dt = time.perf_counter() - t0
            t_frames += dt
            out = args.out_dir / f"walkthrough_{frame:02d}.ppm"
            save_radiance_ppm(image, out)
            print(f"frame {frame:2d}: {out} ({dt:.2f}s view pass)")

    per_frame = t_frames / args.frames
    print(
        f"\nview pass per frame: {per_frame:.2f}s vs {t_sim:.1f}s simulation — "
        f"a re-simulating renderer would pay ~{t_sim / per_frame:.0f}x per "
        "viewpoint; Photon pays it once."
    )


if __name__ == "__main__":
    main()
