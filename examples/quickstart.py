#!/usr/bin/env python
"""Quickstart: simulate the Cornell box, save the answer, render two views.

This walks the full Photon pipeline of the paper (Figure 4.9): a Monte
Carlo light-transport *simulation* stage that builds the 4-D histogram
answer, then a cheap single-bounce *viewing* stage that can be repeated
from any viewpoint without re-simulating (Figure 4.10).

Run:
    python examples/quickstart.py [--photons 20000] [--out-dir .]
"""

from __future__ import annotations

import argparse
import time
from pathlib import Path

from repro.core import (
    Camera,
    PhotonSimulator,
    RadianceField,
    SimulationConfig,
    load_answer,
    save_answer,
)
from repro.core.viewing import render
from repro.geometry import Vec3
from repro.image import save_radiance_ppm
from repro.scenes import CORNELL_DEFAULT_CAMERA, cornell_box


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--photons", type=int, default=20_000)
    parser.add_argument("--out-dir", type=Path, default=Path("."))
    parser.add_argument("--width", type=int, default=160)
    parser.add_argument("--height", type=int, default=120)
    args = parser.parse_args()

    scene = cornell_box()
    print(f"scene: {scene.name} — {scene.defining_polygon_count} defining polygons")

    # --- Simulation stage -------------------------------------------------
    t0 = time.perf_counter()
    result = PhotonSimulator(scene, SimulationConfig(n_photons=args.photons)).run()
    dt = time.perf_counter() - t0
    print(
        f"simulated {args.photons:,} photons in {dt:.1f}s "
        f"({args.photons / dt:,.0f} photons/s)"
    )
    print(
        f"answer: {result.forest.leaf_count:,} view-dependent bins, "
        f"{result.forest.total_tallies:,} tallies, "
        f"{result.forest.memory_bytes() / 1024:.0f} KB, "
        f"mean bounces {result.stats.mean_bounces:.2f}"
    )
    result.forest.check_invariants()

    answer_path = args.out_dir / "cornell.answer.json"
    save_answer(result.forest, answer_path)
    print(f"answer file written: {answer_path}")

    # --- Viewing stage (twice, same answer file) --------------------------
    forest = load_answer(answer_path)
    field = RadianceField(scene, forest)

    views = {
        "cornell_front.ppm": Camera(
            width=args.width, height=args.height, **CORNELL_DEFAULT_CAMERA
        ),
        "cornell_left.ppm": Camera(
            position=Vec3(0.35, 1.5, 3.7),
            look_at=Vec3(1.3, 0.7, 0.4),
            width=args.width,
            height=args.height,
            vertical_fov_degrees=42.0,
        ),
    }
    for name, camera in views.items():
        t0 = time.perf_counter()
        image = render(scene, field, camera)
        out = args.out_dir / name
        save_radiance_ppm(image, out)
        print(f"rendered {out} in {time.perf_counter() - t0:.1f}s (no re-simulation)")


if __name__ == "__main__":
    main()
