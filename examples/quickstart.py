#!/usr/bin/env python
"""Quickstart: simulate the Cornell box, save the answer, render two views.

This walks the full Photon pipeline of the paper (Figure 4.9): a Monte
Carlo light-transport *simulation* stage that builds the 4-D histogram
answer, then a cheap single-bounce *viewing* stage that can be repeated
from any viewpoint without re-simulating (Figure 4.10).

Engines
-------
Three interchangeable ways to run the simulation stage, all producing
bit-identical answer files under per-photon substream RNG:

* ``--engine scalar`` — the per-photon reference loop (the correctness
  oracle; ~10k photons/s on the Cornell box).
* ``--engine vector`` — the NumPy batch engine: photons traced in
  structure-of-arrays batches (typically 5-8x faster).  On large scenes
  intersection runs through the flattened array-encoded octree
  (``repro.geometry.flatoctree``; ``repro simulate --accel`` selects a
  mode explicitly).
* ``--engine vector --workers N`` — batches sharded across a
  multiprocessing pool; on a multi-core machine this multiplies the
  vector rate again.

Run:
    python examples/quickstart.py [--photons 20000] [--out-dir .]
    python examples/quickstart.py --engine vector --workers 4
    python examples/quickstart.py --compare-engines
"""

from __future__ import annotations

import argparse
import time
from pathlib import Path

from repro.core import (
    Camera,
    PhotonSimulator,
    RadianceField,
    SimulationConfig,
    load_answer,
    save_answer,
)
from repro.core.viewing import render
from repro.geometry import Vec3
from repro.image import save_radiance_ppm
from repro.scenes import CORNELL_DEFAULT_CAMERA, cornell_box


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--photons", type=int, default=20_000)
    parser.add_argument("--out-dir", type=Path, default=Path("."))
    parser.add_argument("--width", type=int, default=160)
    parser.add_argument("--height", type=int, default=120)
    parser.add_argument("--engine", choices=("scalar", "vector"), default="vector")
    parser.add_argument("--workers", type=int, default=1)
    parser.add_argument(
        "--compare-engines",
        action="store_true",
        help="time scalar vs vector on the same budget and check parity",
    )
    args = parser.parse_args()

    scene = cornell_box()
    print(f"scene: {scene.name} — {scene.defining_polygon_count} defining polygons")

    if args.compare_engines:
        compare_engines(scene, args.photons)
        return

    # --- Simulation stage -------------------------------------------------
    config = SimulationConfig(
        n_photons=args.photons, engine=args.engine, workers=args.workers
    )
    t0 = time.perf_counter()
    result = PhotonSimulator(scene, config).run()
    dt = time.perf_counter() - t0
    label = args.engine + (f" x{args.workers} procs" if args.workers > 1 else "")
    print(
        f"simulated {args.photons:,} photons in {dt:.1f}s "
        f"({args.photons / dt:,.0f} photons/s, {label})"
    )
    print(
        f"answer: {result.forest.leaf_count:,} view-dependent bins, "
        f"{result.forest.total_tallies:,} tallies, "
        f"{result.forest.memory_bytes() / 1024:.0f} KB, "
        f"mean bounces {result.stats.mean_bounces:.2f}"
    )
    result.forest.check_invariants()

    answer_path = args.out_dir / "cornell.answer.json"
    save_answer(result.forest, answer_path)
    print(f"answer file written: {answer_path}")

    # --- Viewing stage (twice, same answer file) --------------------------
    forest = load_answer(answer_path)
    field = RadianceField(scene, forest)

    views = {
        "cornell_front.ppm": Camera(
            width=args.width, height=args.height, **CORNELL_DEFAULT_CAMERA
        ),
        "cornell_left.ppm": Camera(
            position=Vec3(0.35, 1.5, 3.7),
            look_at=Vec3(1.3, 0.7, 0.4),
            width=args.width,
            height=args.height,
            vertical_fov_degrees=42.0,
        ),
    }
    for name, camera in views.items():
        t0 = time.perf_counter()
        image = render(scene, field, camera)
        out = args.out_dir / name
        save_radiance_ppm(image, out)
        print(f"rendered {out} in {time.perf_counter() - t0:.1f}s (no re-simulation)")


def compare_engines(scene, photons: int) -> None:
    """Time the scalar oracle against the vector engine, prove parity."""
    from repro.core import forest_to_dict

    rates = {}
    forests = {}
    for engine in ("scalar", "vector"):
        config = SimulationConfig(
            n_photons=photons, engine=engine, rng_mode="substream"
        )
        t0 = time.perf_counter()
        result = PhotonSimulator(scene, config).run()
        dt = time.perf_counter() - t0
        rates[engine] = photons / dt
        forests[engine] = forest_to_dict(result.forest)
        print(f"{engine:>7s}: {rates[engine]:>10,.0f} photons/s ({dt:.2f}s)")
    print(f"speedup: {rates['vector'] / rates['scalar']:.1f}x")
    identical = forests["scalar"] == forests["vector"]
    print(f"answers bit-identical: {identical}")
    if not identical:
        raise SystemExit("engine parity violated — run the parity test suite")


if __name__ == "__main__":
    main()
