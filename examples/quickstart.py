#!/usr/bin/env python
"""Quickstart: one RenderSession, repeated simulate/view requests.

This walks the full Photon pipeline of the paper (Figure 4.9) through
the public session API (``repro.api``): a Monte Carlo light-transport
*simulation* stage that builds the 4-D histogram answer, then a cheap
single-bounce *viewing* stage that can be repeated from any viewpoint
without re-simulating (Figure 4.10).

The session is the paper's architecture made explicit: a long-lived
simulation program serving many requests.  The scene is compiled once
into a :class:`repro.api.SceneProgram` (patch arrays + flattened
octree); every ``session.simulate(request)`` after the first reuses the
warm engine, and every ``session.render`` reads the same answer.

Engines (``SessionOptions``), all producing bit-identical answer files
under per-photon substream RNG:

* ``--engine scalar`` — the per-photon reference loop (the correctness
  oracle; ~10k photons/s on the Cornell box).
* ``--engine vector`` — the NumPy batch engine: photons traced in
  structure-of-arrays batches (typically 5-8x faster) through the
  flattened array-encoded octree on large scenes.
* ``--engine vector --workers N`` — batches sharded across a persistent
  multiprocessing pool that stays warm across requests.

Run:
    python examples/quickstart.py [--photons 20000] [--out-dir .]
    python examples/quickstart.py --engine vector --workers 4
    python examples/quickstart.py --compare-engines
"""

from __future__ import annotations

import argparse
import time
from pathlib import Path

from repro.api import (
    Camera,
    RenderSession,
    SessionOptions,
    SimulateRequest,
)
from repro.core import load_answer, save_answer
from repro.geometry import Vec3
from repro.image import save_radiance_ppm
from repro.scenes import cornell_box


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--photons", type=int, default=20_000)
    parser.add_argument("--out-dir", type=Path, default=Path("."))
    parser.add_argument("--width", type=int, default=160)
    parser.add_argument("--height", type=int, default=120)
    parser.add_argument("--engine", choices=("scalar", "vector"), default="vector")
    parser.add_argument("--workers", type=int, default=1)
    parser.add_argument(
        "--compare-engines",
        action="store_true",
        help="time scalar vs vector on the same budget and check parity",
    )
    args = parser.parse_args()

    scene = cornell_box()
    print(f"scene: {scene.name} — {scene.defining_polygon_count} defining polygons")

    if args.compare_engines:
        compare_engines(scene, args.photons)
        return

    options = SessionOptions(engine=args.engine, workers=args.workers)
    request = SimulateRequest(n_photons=args.photons)
    label = args.engine + (f" x{args.workers} procs" if args.workers > 1 else "")

    with RenderSession(scene, options) as session:
        # --- Simulation stage (request #1 pays compile + spawn) -----------
        t0 = time.perf_counter()
        result = session.simulate(request)
        dt = time.perf_counter() - t0
        print(
            f"simulated {args.photons:,} photons in {dt:.1f}s "
            f"({args.photons / dt:,.0f} photons/s, {label})"
        )
        print(
            f"answer: {result.forest.leaf_count:,} view-dependent bins, "
            f"{result.forest.total_tallies:,} tallies, "
            f"{result.forest.memory_bytes() / 1024:.0f} KB, "
            f"mean bounces {result.stats.mean_bounces:.2f}"
        )
        result.forest.check_invariants()

        # A second request on the warm session skips all setup.
        t0 = time.perf_counter()
        session.simulate(SimulateRequest(n_photons=args.photons, seed=0xFEED))
        print(
            f"warm request #2 (different seed): "
            f"{time.perf_counter() - t0:.1f}s — no recompile, no respawn"
        )

        answer_path = args.out_dir / "cornell.answer.json"
        save_answer(result.forest, answer_path)
        print(f"answer file written: {answer_path}")

        # --- Viewing stage (twice, same answer file) ----------------------
        forest = load_answer(answer_path)
        views = {
            # None = the camera registered with the scene itself.
            "cornell_front.ppm": None,
            "cornell_left.ppm": Camera(
                position=Vec3(0.35, 1.5, 3.7),
                look_at=Vec3(1.3, 0.7, 0.4),
                width=args.width,
                height=args.height,
                vertical_fov_degrees=42.0,
            ),
        }
        for name, camera in views.items():
            t0 = time.perf_counter()
            image = session.render(
                forest, camera, width=args.width, height=args.height
            )
            out = args.out_dir / name
            save_radiance_ppm(image, out)
            print(
                f"rendered {out} in {time.perf_counter() - t0:.1f}s "
                "(no re-simulation)"
            )


def compare_engines(scene, photons: int) -> None:
    """Time the scalar oracle against the vector engine, prove parity."""
    from repro.core import forest_to_dict

    rates = {}
    forests = {}
    request = SimulateRequest(n_photons=photons, rng_mode="substream")
    for engine in ("scalar", "vector"):
        with RenderSession(scene, SessionOptions(engine=engine)) as session:
            t0 = time.perf_counter()
            result = session.simulate(request)
            dt = time.perf_counter() - t0
        rates[engine] = photons / dt
        forests[engine] = forest_to_dict(result.forest)
        print(f"{engine:>7s}: {rates[engine]:>10,.0f} photons/s ({dt:.2f}s)")
    print(f"speedup: {rates['vector'] / rates['scalar']:.1f}x")
    identical = forests["scalar"] == forests["vector"]
    print(f"answers bit-identical: {identical}")
    if not identical:
        raise SystemExit("engine parity violated — run the parity test suite")


if __name__ == "__main__":
    main()
